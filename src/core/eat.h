// Expected Arriving Time estimation (paper §IV-B, Defs. 5–7, Eq. 10–11).
//
// The allocator works on immutable snapshots of subflow state so that its
// virtual allocation (Algorithm 1) can advance per-subflow EAT without
// touching the live subflows.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "tcp/subflow.h"

namespace fmtcp::core {

/// Frozen view of one subflow at allocation time.
struct SubflowSnapshot {
  std::uint32_t id = 0;
  std::size_t mss_payload = 0;
  std::uint64_t window_space = 0;  ///< w_f: free window slots.
  double cwnd = 1.0;
  SimTime edt = 0;   ///< Expected delivery time (Def. 5).
  SimTime rt = 0;    ///< Expected response time (Def. 6, Eq. 10).
  SimTime tau = 0;   ///< Time since first unacked segment was sent.
  double loss = 0.0; ///< p_f.
};

/// Captures the live subflow state.
SubflowSnapshot snapshot_subflow(const tcp::Subflow& subflow);

/// EAT_f after `virtually_assigned` packets have been (virtually) placed
/// on the subflow during this allocation round (Eq. 11, extended so the
/// virtual allocation loop terminates):
///   - while the window still has space, EAT = EDT;
///   - the first packet past the window waits for the oldest ACK:
///     EAT = EDT + RT - tau (floored at EDT);
///   - each further packet waits one more ACK slot, spaced RT / cwnd
///     (the ACK-clock spacing).
SimTime expected_arrival_time(const SubflowSnapshot& subflow,
                              std::uint64_t virtually_assigned);

}  // namespace fmtcp::core
