// FMTCP connection: wires a sender, a receiver, and one TCP subflow per
// disjoint path of a Topology. The top-level public API most users touch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.h"
#include "core/receiver.h"
#include "core/sender.h"
#include "metrics/block_stats.h"
#include "metrics/goodput.h"
#include "net/topology.h"
#include "obs/observer.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::core {

struct FmtcpConnectionConfig {
  FmtcpParams params;
  /// Template for every subflow; `id` and `fresh_payload_on_retransmit`
  /// are overridden per subflow.
  tcp::SubflowConfig subflow;
  /// Receiver-side subflow behaviour (delayed ACKs etc.).
  tcp::SubflowReceiverConfig receiver;
  /// Couple the subflows with LIA (RFC 6356) instead of per-subflow
  /// Reno — the paper notes (§III-A) its framework can adopt any of the
  /// surveyed congestion controllers.
  bool use_lia = false;
  /// Seed each subflow's loss estimate with the path's configured rate
  /// (the paper's senders know the statistic loss probability).
  bool seed_loss_hint = true;
  /// Goodput rate-series bin width.
  SimTime goodput_bin = kSecond;
  /// Application data plumbing (not owned; null = deterministic
  /// payloads with byte-exact verification). See core/stream.h.
  BlockSource* source = nullptr;
  BlockSink* block_sink = nullptr;
  /// Observability sink (not owned; null = off). Threaded into the
  /// sender, receiver, and every subflow. See obs/observer.h.
  obs::Observer* observer = nullptr;
};

class FmtcpConnection {
 public:
  FmtcpConnection(sim::Simulator& simulator, net::Topology& topology,
                  const FmtcpConnectionConfig& config);

  /// Starts transmitting (call once after construction).
  void start() { sender_->start(); }

  FmtcpSender& sender() { return *sender_; }
  FmtcpReceiver& receiver() { return *receiver_; }
  tcp::Subflow& subflow(std::size_t i) { return *subflows_.at(i); }
  std::size_t subflow_count() const { return subflows_.size(); }

  const metrics::GoodputMeter& goodput() const { return goodput_; }
  const metrics::BlockDelayRecorder& block_delays() const { return delays_; }

 private:
  metrics::GoodputMeter goodput_;
  metrics::BlockDelayRecorder delays_;
  std::unique_ptr<tcp::LiaGroup> lia_group_;
  std::unique_ptr<FmtcpSender> sender_;
  std::unique_ptr<FmtcpReceiver> receiver_;
  std::vector<std::unique_ptr<tcp::Subflow>> subflows_;
  std::vector<std::unique_ptr<tcp::SubflowReceiver>> subflow_receivers_;
};

}  // namespace fmtcp::core
