#include "core/params.h"

#include <cmath>

#include "common/check.h"

namespace fmtcp::core {

double FmtcpParams::delta_margin_symbols() const {
  return std::log2(1.0 / delta_hat);
}

void FmtcpParams::validate() const {
  FMTCP_CHECK(block_symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
  FMTCP_CHECK(delta_hat > 0.0 && delta_hat < 1.0);
  FMTCP_CHECK(max_pending_blocks > 0);
}

}  // namespace fmtcp::core
