// FMTCP sender: block management + Algorithm 1 allocation, wired into the
// TCP subflows as their SegmentProvider (paper Fig. 1 architecture).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/allocator.h"
#include "core/block_manager.h"
#include "core/params.h"
#include "metrics/block_stats.h"
#include "obs/observer.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::core {

class FmtcpSender final : public tcp::SegmentProvider, public AllocatorEnv {
 public:
  /// `delays` may be null; when set, receives one sample per completed
  /// block (sender-measured: first symbol sent → decode ACK, §V).
  /// `source` may be null (deterministic payloads); when set, block
  /// payloads come from the application (see core/stream.h).
  /// `observer` may be null; when set, allocation decisions and EAT
  /// prediction/outcome pairs land on its timeline and fmtcp.* metrics.
  FmtcpSender(sim::Simulator& simulator, const FmtcpParams& params,
              metrics::BlockDelayRecorder* delays = nullptr,
              BlockSource* source = nullptr,
              obs::Observer* observer = nullptr);

  /// The application produced new data (the BlockSource can now build
  /// more blocks): re-offers send opportunities to every subflow.
  void notify_data_available() { schedule_poke(); }

  /// Registers a subflow; ids must be dense starting at 0, registration
  /// order == id order. Called during connection wiring.
  void register_subflow(tcp::Subflow* subflow);

  /// Kicks every subflow once the topology is wired.
  void start();

  BlockManager& blocks() { return blocks_; }
  const BlockManager& blocks() const { return blocks_; }

  // --- tcp::SegmentProvider ------------------------------------------
  std::optional<tcp::SegmentContent> next_segment(
      std::uint32_t subflow) override;
  std::optional<tcp::SegmentContent> retransmit_segment(
      std::uint32_t subflow, std::uint64_t seq) override;
  void on_segment_acked(std::uint32_t subflow, std::uint64_t seq,
                        const tcp::SegmentContent& content) override;
  void on_segment_lost(std::uint32_t subflow, std::uint64_t seq,
                       const tcp::SegmentContent& content) override;
  void on_ack_info(std::uint32_t subflow, const net::Packet& ack) override;

  // --- AllocatorEnv ----------------------------------------------------
  std::vector<SubflowSnapshot> subflow_snapshots() const override;
  std::optional<net::BlockId> block_at(std::size_t index) const override;
  std::uint32_t block_k_hat(net::BlockId block) const override;
  double real_k_tilde(net::BlockId block) const override;
  double delta_hat() const override { return params_.delta_hat; }
  std::size_t symbol_wire_bytes() const override {
    return params_.symbol_wire_bytes();
  }

  /// p_f used in Eq. 8: the subflow's live loss estimate.
  double loss_of(std::uint32_t subflow) const;

 private:
  tcp::SegmentContent materialize(const PacketPlan& plan,
                                  std::uint32_t subflow);
  void account_symbols(const tcp::SegmentContent& content,
                       std::uint32_t subflow, bool acked);

  /// Schedules a coalesced zero-delay event that re-offers a send
  /// opportunity to every subflow. Called whenever allocation inputs
  /// change (k̄ update, in-flight drain): a subflow that was refused
  /// symbols earlier may be the only one able to carry them now, and
  /// without this the connection can idle with open blocks (no ACKs in
  /// flight => no events => deadlock).
  void schedule_poke();

  sim::Simulator& simulator_;
  FmtcpParams params_;
  BlockManager blocks_;
  Allocator allocator_;
  std::vector<tcp::Subflow*> subflows_;
  bool poke_pending_ = false;

  // Observability (no-ops when obs_ is null).
  obs::Observer* obs_ = nullptr;
  std::uint64_t eat_samples_ = 0;
  obs::Counter obs_allocations_;
  obs::Counter obs_symbols_allocated_;
  obs::Histogram obs_eat_error_ms_;
};

}  // namespace fmtcp::core
