// FMTCP protocol parameters (paper §III-B "determining k̂" and §IV).
#pragma once

#include <cstdint>

#include "common/time.h"
#include "fountain/coding_field.h"

namespace fmtcp::core {

/// How the sender fills a packet for a subflow with send opportunity.
enum class AllocationMode {
  /// Algorithm 1: virtual allocation over all subflows by EAT (paper).
  kEatVirtual,
  /// Greedy ablation: fill the pending subflow with the first incomplete
  /// blocks directly, ignoring the other subflows' EAT.
  kGreedy,
};

struct FmtcpParams {
  /// k̂: source symbols per block. Sized so coding cost is negligible and
  /// the block fits the receive buffer (paper's constraints on k̂).
  std::uint32_t block_symbols = 64;

  /// Symbol payload size in bytes.
  std::size_t symbol_bytes = 160;

  /// Wire overhead charged per symbol in a packet (block ref + seed).
  std::size_t symbol_header_bytes = 12;

  /// δ̂: maximum acceptable decoding-failure probability (Def. 4). A block
  /// counts δ̂-complete once k̃ ≥ k̂ + log2(1/δ̂).
  double delta_hat = 0.05;

  /// Cap on concurrently open (created, not yet decoded) blocks; models
  /// the receive-buffer constraint on pending blocks.
  std::size_t max_pending_blocks = 128;

  /// Carry and verify real payload bytes end to end. Rank-only mode
  /// (false) skips byte XORs without changing protocol behaviour.
  bool carry_payload = true;

  /// Total blocks the application will send; 0 = unbounded stream.
  std::uint64_t total_blocks = 0;

  /// Data-allocation strategy (kGreedy is an ablation knob).
  AllocationMode allocation = AllocationMode::kEatVirtual;

  /// Systematic fountain code (extension): each block's first k̂ symbols
  /// are the source symbols themselves, so a lossless stretch decodes
  /// with zero coding overhead; repair symbols stay random linear.
  bool systematic = false;

  /// Coefficient field of the random linear code (ablation knob; CTCP
  /// comparison). kGf2 is the paper's code and the default; kGf256 buys
  /// lower reception overhead (δ̃ shrinks 256× per extra symbol instead
  /// of 2×) at a higher decode cost. Orthogonal to `systematic`.
  fountain::CodingField coding_field = fountain::CodingField::kGf2;

  /// Application bytes per block.
  std::size_t block_bytes() const {
    return static_cast<std::size_t>(block_symbols) * symbol_bytes;
  }

  /// Wire bytes one symbol occupies inside a packet.
  std::size_t symbol_wire_bytes() const {
    return symbol_bytes + symbol_header_bytes;
  }

  /// Extra independent symbols needed beyond k̂ for δ̂-completeness:
  /// log2(1/δ̂) (paper §IV-A).
  double delta_margin_symbols() const;

  /// Validates parameter sanity; aborts on nonsense.
  void validate() const;
};

}  // namespace fmtcp::core
