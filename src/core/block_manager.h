// Sender-side block bookkeeping (paper §IV-A).
//
// For every open block the manager tracks k̄_b (receiver-confirmed
// independent symbols, from block ACKs), the per-subflow in-flight symbol
// counts l_b^f, and the encoder that generates fresh symbols. It computes
// the estimated received count k̃_b (Eq. 8) and the expected decoding
// failure probability δ̃_b (Def. 3), and reports block completion with
// the sender-measured delivery delay (first symbol sent → decode ACK).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/block_source.h"
#include "core/params.h"
#include "fountain/codec.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace fmtcp::core {

/// One open (created, not yet confirmed-decoded) block at the sender.
struct SenderBlock {
  net::BlockId id = 0;
  std::uint32_t k_hat = 0;
  std::uint32_t k_bar = 0;  ///< Receiver-confirmed independent symbols.
  bool decoded = false;     ///< Receiver confirmed full decode.
  /// l_b^f: symbols of this block inside subflow f's window.
  std::map<std::uint32_t, std::uint32_t> in_flight;
  std::uint64_t symbols_sent = 0;
  SimTime first_symbol_sent = kNever;
  fountain::SymbolEncoder encoder;  ///< Field per params.coding_field.

  /// `source` may be null (deterministic content, or none in rank-only
  /// mode).
  SenderBlock(net::BlockId id, const FmtcpParams& params, Rng rng,
              BlockSource* source);

  std::uint32_t total_in_flight() const;
};

class BlockManager {
 public:
  /// `on_complete(block_id, delivery_delay)` fires when the decode ACK
  /// for a block first arrives.
  using CompletionCallback =
      std::function<void(net::BlockId, SimTime delay)>;

  /// `source` supplies block payloads; null = deterministic content.
  /// When set, can_open() additionally requires the source to have the
  /// data ready (application-limited sending).
  BlockManager(sim::Simulator& simulator, const FmtcpParams& params,
               CompletionCallback on_complete,
               BlockSource* source = nullptr);

  const FmtcpParams& params() const { return params_; }

  /// Blocks still open, in id order.
  const std::deque<SenderBlock>& open_blocks() const { return blocks_; }
  std::deque<SenderBlock>& open_blocks() { return blocks_; }

  /// Finds an open block; nullptr if closed (decoded) or never created.
  SenderBlock* find(net::BlockId id);
  const SenderBlock* find(net::BlockId id) const;

  /// Id the next created block will get.
  net::BlockId next_block_id() const { return next_id_; }

  /// True if `extra` more blocks could be opened right now (pending-block
  /// cap and the application's total-block limit).
  bool can_open(std::uint64_t extra = 1) const;

  /// Creates (if necessary) and returns the block with `id`; `id` must be
  /// the next unopened id when creating. Respects can_open().
  SenderBlock& ensure_block(net::BlockId id);

  /// k̃_b (Eq. 8): k̄_b + Σ_f l_b^f (1 - p_f). `loss_of(f)` supplies p_f.
  double k_tilde(const SenderBlock& block,
                 const std::function<double(std::uint32_t)>& loss_of) const;

  /// δ̃_b (Def. 3): expected decoding failure probability from k̃_b.
  double delta_tilde(
      const SenderBlock& block,
      const std::function<double(std::uint32_t)>& loss_of) const;

  // --- Event handlers -----------------------------------------------

  /// `count` fresh symbols of `block` entered subflow `f`'s window.
  void on_symbols_sent(net::BlockId block, std::uint32_t subflow,
                       std::uint32_t count);

  /// Symbols left the window because their segment was cumulatively acked.
  void on_symbols_acked(net::BlockId block, std::uint32_t subflow,
                        std::uint32_t count);

  /// Symbols left the window because their segment was declared lost.
  void on_symbols_lost(net::BlockId block, std::uint32_t subflow,
                       std::uint32_t count);

  /// Receiver feedback for one block (k̄_b and the decoded flag).
  void on_block_ack(const net::BlockAck& ack);

  // --- Counters -------------------------------------------------------
  std::uint64_t blocks_completed() const { return completed_; }
  std::uint64_t total_symbols_sent() const { return symbols_sent_; }

 private:
  void maybe_close_front();

  sim::Simulator& simulator_;
  FmtcpParams params_;
  CompletionCallback on_complete_;
  BlockSource* source_;
  Rng encoder_rng_;
  std::deque<SenderBlock> blocks_;
  net::BlockId next_id_ = 0;
  /// Blocks fully closed (decoded and popped): ids below this are closed.
  net::BlockId closed_below_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t symbols_sent_ = 0;
};

}  // namespace fmtcp::core
