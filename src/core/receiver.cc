#include "core/receiver.h"

#include <algorithm>

#include "common/check.h"
#include "fountain/block.h"

namespace fmtcp::core {

namespace {
/// How many freshly decoded blocks keep appearing in ACKs so a lost
/// decode notification is repaired by later ACKs.
constexpr std::size_t kRecentlyDecodedEcho = 4;
}  // namespace

FmtcpReceiver::FmtcpReceiver(sim::Simulator& simulator,
                             const FmtcpParams& params,
                             metrics::GoodputMeter* goodput,
                             BlockSink* sink, obs::Observer* observer)
    : simulator_(simulator),
      params_(params),
      goodput_(goodput),
      sink_(sink),
      obs_(observer) {
  params_.validate();
  FMTCP_CHECK(sink_ == nullptr || params_.carry_payload);
  if (obs_ != nullptr) {
    obs_symbols_ = obs_->metrics.counter("fmtcp.symbols_received");
    obs_redundant_ = obs_->metrics.counter("fmtcp.redundant_symbols");
    obs_blocks_decoded_ = obs_->metrics.counter("fmtcp.blocks_decoded");
    obs_blocks_delivered_ =
        obs_->metrics.counter("fmtcp.blocks_delivered");
    coding_metrics_.payload_bytes_xored =
        obs_->metrics.counter("fountain.payload_bytes_xored");
    coding_metrics_.coeff_word_xors =
        obs_->metrics.counter("fountain.coeff_word_xors");
    coding_metrics_.rows_composed =
        obs_->metrics.counter("fountain.rows_composed");
  }
}

bool FmtcpReceiver::is_decoded(net::BlockId id) const {
  return id < deliver_next_ || decoded_waiting_.count(id) != 0;
}

void FmtcpReceiver::note_redundant(std::uint32_t subflow,
                                   net::BlockId block,
                                   std::uint32_t rank) {
  obs_redundant_.inc();
  if (obs_ != nullptr) {
    obs_->timeline.emit({obs::EventType::kRedundantSymbol, subflow,
                         simulator_.now(), block,
                         static_cast<double>(rank), 0.0});
  }
}

void FmtcpReceiver::on_segment(std::uint32_t subflow, net::Packet& p) {
  // Payload bytes are moved off the packet (into the decoder or back to
  // the simulator's buffer pool); symbol metadata stays for fill_ack.
  for (net::EncodedSymbol& symbol : p.symbols) {
    ++symbols_received_;
    obs_symbols_.inc();
    if (is_decoded(symbol.block)) {
      ++redundant_symbols_;
      note_redundant(subflow, symbol.block,
                     /*rank=*/symbol.block_symbols);
      simulator_.buffer_pool().release(std::move(symbol.data));
      continue;
    }
    auto [it, inserted] = decoders_.try_emplace(
        symbol.block, params_.coding_field, symbol.block_symbols,
        params_.symbol_bytes, params_.carry_payload,
        &simulator_.buffer_pool(), &coding_metrics_);
    fountain::SymbolDecoder& decoder = it->second;
    if (!decoder.add_symbol(std::move(symbol))) {
      ++redundant_symbols_;  // Linearly dependent; dropped (§III-B).
      note_redundant(subflow, symbol.block, decoder.rank());
      continue;
    }
    if (obs_ != nullptr) {
      obs_->timeline.emit({obs::EventType::kRankProgress, subflow,
                           simulator_.now(), symbol.block,
                           static_cast<double>(decoder.rank()),
                           static_cast<double>(symbol.block_symbols)});
    }
    if (decoder.complete()) {
      if (sink_ != nullptr) {
        decoded_data_.emplace(symbol.block, decoder.decode(decode_scratch_));
      } else if (params_.carry_payload) {
        // No application sink: verify against the deterministic source.
        const fountain::BlockData& decoded = decoder.decode(decode_scratch_);
        const fountain::BlockData expected =
            fountain::make_deterministic_block(
                symbol.block, symbol.block_symbols, params_.symbol_bytes);
        if (decoded.bytes() != expected.bytes()) payload_ok_ = false;
      }
      decoded_waiting_.insert(symbol.block);
      recently_decoded_.push_front(symbol.block);
      if (recently_decoded_.size() > kRecentlyDecodedEcho) {
        recently_decoded_.pop_back();
      }
      obs_blocks_decoded_.inc();
      if (obs_ != nullptr) {
        obs_->timeline.emit(
            {obs::EventType::kBlockDecoded, subflow, simulator_.now(),
             symbol.block, static_cast<double>(decoder.received_count()),
             static_cast<double>(decoder.redundant_count())});
      }
      decoders_.erase(it);
      deliver_ready_blocks();
    }
  }
  note_buffer_occupancy();
}

void FmtcpReceiver::deliver_ready_blocks() {
  while (decoded_waiting_.erase(deliver_next_) != 0) {
    if (sink_ != nullptr) {
      const auto it = decoded_data_.find(deliver_next_);
      FMTCP_CHECK(it != decoded_data_.end());
      sink_->on_block(deliver_next_, it->second);
      decoded_data_.erase(it);
    }
    if (goodput_ != nullptr) {
      goodput_->on_delivered(simulator_.now(), params_.block_bytes());
    }
    ++blocks_delivered_;
    obs_blocks_delivered_.inc();
    if (obs_ != nullptr) {
      obs_->timeline.emit({obs::EventType::kBlockDelivered, 0,
                           simulator_.now(), deliver_next_,
                           static_cast<double>(blocks_delivered_), 0.0});
    }
    ++deliver_next_;
  }
}

void FmtcpReceiver::note_buffer_occupancy() {
  std::size_t occupancy =
      decoded_waiting_.size() * params_.block_bytes();
  for (const auto& [id, decoder] : decoders_) {
    occupancy += decoder.buffered_bytes();
  }
  max_buffered_ = std::max(max_buffered_, occupancy);
}

net::BlockAck FmtcpReceiver::make_block_ack(net::BlockId id) const {
  net::BlockAck ack;
  ack.block = id;
  if (is_decoded(id)) {
    ack.independent_symbols = params_.block_symbols;
    ack.decoded = true;
    return ack;
  }
  const auto it = decoders_.find(id);
  ack.independent_symbols = it == decoders_.end() ? 0 : it->second.rank();
  return ack;
}

void FmtcpReceiver::fill_ack(std::uint32_t /*subflow*/,
                             const net::Packet& data, net::Packet& ack,
                             std::size_t& /*extra_bytes*/) {
  std::set<net::BlockId> mentioned;
  // Blocks whose symbols rode this data packet.
  for (const net::EncodedSymbol& symbol : data.symbols) {
    mentioned.insert(symbol.block);
  }
  // The first block still being decoded (drives R2 at the sender).
  if (!decoders_.empty()) mentioned.insert(decoders_.begin()->first);
  // Recently decoded blocks, so a lost decode notification heals.
  for (net::BlockId id : recently_decoded_) mentioned.insert(id);

  ack.block_acks.reserve(mentioned.size());
  for (net::BlockId id : mentioned) {
    ack.block_acks.push_back(make_block_ack(id));
  }
}

}  // namespace fmtcp::core
