#include "core/stream.h"

#include <algorithm>

#include "common/check.h"

namespace fmtcp::core {

namespace {
constexpr std::size_t kFrameHeaderBytes = 4;
}  // namespace

std::size_t FmtcpStreamWriter::payload_per_block(std::uint32_t symbols,
                                                 std::size_t symbol_bytes) {
  const std::size_t block_bytes =
      static_cast<std::size_t>(symbols) * symbol_bytes;
  FMTCP_CHECK(block_bytes > kFrameHeaderBytes);
  return block_bytes - kFrameHeaderBytes;
}

FmtcpStreamWriter::FmtcpStreamWriter(std::uint32_t symbols,
                                     std::size_t symbol_bytes)
    : symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      capacity_(payload_per_block(symbols, symbol_bytes)) {}

std::size_t FmtcpStreamWriter::buffered_bytes() const {
  std::size_t total = current_.size();
  for (const auto& frame : frames_) total += frame.size();
  return total;
}

void FmtcpStreamWriter::commit_full_frames() {
  while (current_.size() >= capacity_) {
    std::vector<std::uint8_t> frame(current_.begin(),
                                    current_.begin() + capacity_);
    current_.erase(current_.begin(), current_.begin() + capacity_);
    frames_.push_back(std::move(frame));
  }
}

void FmtcpStreamWriter::write(const std::uint8_t* data, std::size_t size) {
  FMTCP_CHECK(!closed_);
  current_.insert(current_.end(), data, data + size);
  bytes_written_ += size;
  commit_full_frames();
  if (sender_ != nullptr) sender_->notify_data_available();
}

void FmtcpStreamWriter::write(const std::string& data) {
  write(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

void FmtcpStreamWriter::flush() {
  commit_full_frames();
  if (!current_.empty()) {
    frames_.push_back(std::move(current_));
    current_.clear();
  }
  if (sender_ != nullptr) sender_->notify_data_available();
}

void FmtcpStreamWriter::close() {
  flush();
  closed_ = true;
  if (sender_ != nullptr) sender_->notify_data_available();
}

bool FmtcpStreamWriter::has_block(net::BlockId id) {
  if (id < next_build_) return true;  // Already built.
  return id - next_build_ < frames_.size();
}

fountain::BlockData FmtcpStreamWriter::build_block(
    net::BlockId id, std::uint32_t symbols, std::size_t symbol_bytes) {
  FMTCP_CHECK(id == next_build_);
  FMTCP_CHECK(symbols == symbols_);
  FMTCP_CHECK(symbol_bytes == symbol_bytes_);
  FMTCP_CHECK(!frames_.empty());
  const std::vector<std::uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  FMTCP_CHECK(frame.size() <= capacity_);

  fountain::BlockData block(symbols, symbol_bytes);
  auto& bytes = block.bytes();
  const std::size_t length = frame.size();
  bytes[0] = static_cast<std::uint8_t>(length);
  bytes[1] = static_cast<std::uint8_t>(length >> 8);
  bytes[2] = static_cast<std::uint8_t>(length >> 16);
  bytes[3] = static_cast<std::uint8_t>(length >> 24);
  std::copy(frame.begin(), frame.end(),
            bytes.begin() + kFrameHeaderBytes);
  ++next_build_;
  return block;
}

FmtcpStreamReader::FmtcpStreamReader(ByteCallback on_bytes)
    : on_bytes_(std::move(on_bytes)) {}

void FmtcpStreamReader::on_block(net::BlockId /*id*/,
                                 const fountain::BlockData& block) {
  ++blocks_received_;
  const auto& bytes = block.bytes();
  if (bytes.size() < kFrameHeaderBytes) {
    framing_ok_ = false;
    return;
  }
  const std::size_t length = static_cast<std::size_t>(bytes[0]) |
                             (static_cast<std::size_t>(bytes[1]) << 8) |
                             (static_cast<std::size_t>(bytes[2]) << 16) |
                             (static_cast<std::size_t>(bytes[3]) << 24);
  if (length > bytes.size() - kFrameHeaderBytes) {
    framing_ok_ = false;
    return;
  }
  const std::uint8_t* payload = bytes.data() + kFrameHeaderBytes;
  bytes_received_ += length;
  if (store_) stored_.insert(stored_.end(), payload, payload + length);
  if (on_bytes_) on_bytes_(payload, length);
}

}  // namespace fmtcp::core
