#include "core/sender.h"

#include <cmath>
#include <map>

#include "common/check.h"

namespace fmtcp::core {

FmtcpSender::FmtcpSender(sim::Simulator& simulator, const FmtcpParams& params,
                         metrics::BlockDelayRecorder* delays,
                         BlockSource* source, obs::Observer* observer)
    : simulator_(simulator),
      params_(params),
      blocks_(
          simulator, params,
          [delays](net::BlockId id, SimTime delay) {
            if (delays != nullptr) delays->record(id, delay);
          },
          source),
      allocator_(*this, params.allocation),
      obs_(observer) {
  if (obs_ != nullptr) {
    obs_allocations_ = obs_->metrics.counter("fmtcp.allocations");
    obs_symbols_allocated_ =
        obs_->metrics.counter("fmtcp.symbols_allocated");
    obs_eat_error_ms_ = obs_->metrics.histogram(
        "fmtcp.eat_abs_error_ms",
        {10, 25, 50, 100, 200, 400, 800, 1600, 3200, 6400});
  }
}

void FmtcpSender::register_subflow(tcp::Subflow* subflow) {
  FMTCP_CHECK(subflow != nullptr);
  FMTCP_CHECK(subflow->id() == subflows_.size());
  subflows_.push_back(subflow);
}

void FmtcpSender::start() {
  for (tcp::Subflow* subflow : subflows_) {
    subflow->notify_send_opportunity();
  }
}

double FmtcpSender::loss_of(std::uint32_t subflow) const {
  FMTCP_CHECK(subflow < subflows_.size());
  return subflows_[subflow]->loss_estimate();
}

std::vector<SubflowSnapshot> FmtcpSender::subflow_snapshots() const {
  std::vector<SubflowSnapshot> snaps;
  snaps.reserve(subflows_.size());
  for (const tcp::Subflow* subflow : subflows_) {
    snaps.push_back(snapshot_subflow(*subflow));
  }
  return snaps;
}

std::optional<net::BlockId> FmtcpSender::block_at(std::size_t index) const {
  // Open, not-yet-decoded blocks first, in sequence order.
  std::size_t i = 0;
  for (const SenderBlock& block : blocks_.open_blocks()) {
    if (block.decoded) continue;
    if (i == index) return block.id;
    ++i;
  }
  // Then prospective blocks the application can still supply.
  const std::uint64_t beyond = index - i;
  if (blocks_.can_open(beyond + 1)) {
    return blocks_.next_block_id() + beyond;
  }
  return std::nullopt;
}

std::uint32_t FmtcpSender::block_k_hat(net::BlockId /*block*/) const {
  return params_.block_symbols;
}

double FmtcpSender::real_k_tilde(net::BlockId id) const {
  const SenderBlock* block = blocks_.find(id);
  if (block == nullptr) return 0.0;  // Prospective block.
  return blocks_.k_tilde(*block, [this](std::uint32_t f) {
    return loss_of(f);
  });
}

tcp::SegmentContent FmtcpSender::materialize(const PacketPlan& plan,
                                             std::uint32_t subflow) {
  tcp::SegmentContent content;
  content.payload_bytes = plan.payload_bytes;
  for (const PacketPlan::Entry& entry : plan.entries) {
    SenderBlock& block = blocks_.ensure_block(entry.block);
    for (std::uint32_t j = 0; j < entry.symbols; ++j) {
      content.symbols.push_back(block.encoder.next_symbol());
    }
    blocks_.on_symbols_sent(entry.block, subflow, entry.symbols);
  }
  return content;
}

std::optional<tcp::SegmentContent> FmtcpSender::next_segment(
    std::uint32_t subflow) {
  const std::optional<PacketPlan> plan = allocator_.allocate(subflow);
  if (!plan.has_value()) return std::nullopt;
  tcp::SegmentContent content = materialize(*plan, subflow);
  if (obs_ != nullptr) {
    obs_allocations_.inc();
    obs_symbols_allocated_.inc(plan->total_symbols());
    obs_->timeline.emit(
        {obs::EventType::kAllocation, subflow, simulator_.now(),
         plan->entries.empty() ? 0 : plan->entries.front().block,
         static_cast<double>(plan->total_symbols()),
         static_cast<double>(plan->entries.size())});
    // Score the EAT estimate (Eq. 11): predict this segment's arrival
    // now, check it against the cumulative ACK in on_segment_acked.
    const SimTime predicted =
        simulator_.now() + subflows_[subflow]->expected_arrival_time();
    content.predicted_arrival = predicted;
    obs_->timeline.emit({obs::EventType::kEatPrediction, subflow,
                         simulator_.now(), eat_samples_++,
                         to_seconds(predicted), 0.0});
  }
  return content;
}

std::optional<tcp::SegmentContent> FmtcpSender::retransmit_segment(
    std::uint32_t subflow, std::uint64_t /*seq*/) {
  // Fresh symbols for the retransmission slot — the FMTCP mechanism.
  return next_segment(subflow);
}

void FmtcpSender::account_symbols(const tcp::SegmentContent& content,
                                  std::uint32_t subflow, bool acked) {
  std::map<net::BlockId, std::uint32_t> per_block;
  for (const net::EncodedSymbol& symbol : content.symbols) {
    ++per_block[symbol.block];
  }
  for (const auto& [block, count] : per_block) {
    if (acked) {
      blocks_.on_symbols_acked(block, subflow, count);
    } else {
      blocks_.on_symbols_lost(block, subflow, count);
    }
  }
}

void FmtcpSender::on_segment_acked(std::uint32_t subflow,
                                   std::uint64_t /*seq*/,
                                   const tcp::SegmentContent& content) {
  account_symbols(content, subflow, /*acked=*/true);
  if (obs_ != nullptr && content.predicted_arrival > 0) {
    // The ACK confirms arrival one reverse trip after the data landed;
    // compare prediction against the ACK time (the sender-observable
    // proxy the paper's EAT feeds back into, §IV-B).
    const SimTime actual = simulator_.now();
    obs_->timeline.emit({obs::EventType::kEatOutcome, subflow, actual, 0,
                         to_seconds(content.predicted_arrival),
                         to_seconds(actual)});
    obs_eat_error_ms_.observe(
        std::abs(to_ms(actual - content.predicted_arrival)));
  }
  schedule_poke();
}

void FmtcpSender::on_segment_lost(std::uint32_t subflow,
                                  std::uint64_t /*seq*/,
                                  const tcp::SegmentContent& content) {
  account_symbols(content, subflow, /*acked=*/false);
  schedule_poke();
}

void FmtcpSender::on_ack_info(std::uint32_t /*subflow*/,
                              const net::Packet& ack) {
  for (const net::BlockAck& block_ack : ack.block_acks) {
    blocks_.on_block_ack(block_ack);
  }
  schedule_poke();
}

void FmtcpSender::schedule_poke() {
  if (poke_pending_) return;
  poke_pending_ = true;
  simulator_.schedule_in(0, "poke", [this] {
    poke_pending_ = false;
    for (tcp::Subflow* subflow : subflows_) {
      subflow->notify_send_opportunity();
    }
  });
}

}  // namespace fmtcp::core
