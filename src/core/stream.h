// Byte-stream adapters: the application-facing API over FMTCP blocks.
//
// FmtcpStreamWriter turns write()/close() calls into coding blocks (each
// block frames its payload with a 4-byte length, so partial final blocks
// pad cleanly); FmtcpStreamReader re-emits the exact byte stream on the
// receiver. Together they make an FmtcpConnection carry real application
// bytes end to end:
//
//   FmtcpStreamWriter writer;
//   FmtcpStreamReader reader([&](const std::uint8_t* p, std::size_t n) {
//     out.append(reinterpret_cast<const char*>(p), n); });
//   config.source = &writer;
//   config.block_sink = &reader;
//   core::FmtcpConnection connection(sim, topology, config);
//   writer.attach(&connection.sender());
//   writer.write(data);
//   writer.close();
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/block_source.h"
#include "core/sender.h"

namespace fmtcp::core {

/// Sender-side adapter: buffers application bytes and serves them to the
/// BlockManager as framed blocks.
class FmtcpStreamWriter final : public BlockSource {
 public:
  /// Geometry must match the connection's FmtcpParams.
  FmtcpStreamWriter(std::uint32_t symbols, std::size_t symbol_bytes);

  /// Bytes of application payload carried per block of the given
  /// geometry (the 4-byte frame header is carved out of the block).
  static std::size_t payload_per_block(std::uint32_t symbols,
                                       std::size_t symbol_bytes);

  /// Attaches the sender to poke when new data arrives (may be null for
  /// tests driving the source directly).
  void attach(FmtcpSender* sender) { sender_ = sender; }

  /// Appends bytes to the outgoing stream. Full blocks become available
  /// as soon as enough bytes accumulate.
  void write(const std::uint8_t* data, std::size_t size);
  void write(const std::string& data);

  /// Commits the current partial block immediately (padded) — the
  /// latency/efficiency knob for interactive streams.
  void flush();

  /// Flushes and marks end of stream.
  void close();

  bool closed() const { return closed_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  /// Bytes accepted but not yet handed to the coder.
  std::size_t buffered_bytes() const;

  // --- BlockSource ----------------------------------------------------
  bool has_block(net::BlockId id) override;
  fountain::BlockData build_block(net::BlockId id, std::uint32_t symbols,
                                  std::size_t symbol_bytes) override;

 private:
  void commit_full_frames();

  FmtcpSender* sender_ = nullptr;
  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  std::size_t capacity_;  ///< Application bytes per block.
  /// Frames committed (full blocks or flush points), ready to build.
  std::deque<std::vector<std::uint8_t>> frames_;
  /// Bytes not yet committed to a frame.
  std::vector<std::uint8_t> current_;
  net::BlockId next_build_ = 0;
  bool closed_ = false;
  std::uint64_t bytes_written_ = 0;
};

/// Receiver-side adapter: unframes delivered blocks and emits the byte
/// stream, in order, exactly once.
class FmtcpStreamReader final : public BlockSink {
 public:
  using ByteCallback =
      std::function<void(const std::uint8_t* data, std::size_t size)>;

  /// `on_bytes` may be null; received bytes are then only counted (and
  /// optionally stored via set_store()).
  explicit FmtcpStreamReader(ByteCallback on_bytes = nullptr);

  /// Keep a copy of everything received (tests, small transfers).
  void set_store(bool store) { store_ = store; }
  const std::vector<std::uint8_t>& stored() const { return stored_; }

  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t blocks_received() const { return blocks_received_; }
  /// True if any block carried a malformed frame header.
  bool framing_ok() const { return framing_ok_; }

  // --- BlockSink --------------------------------------------------------
  void on_block(net::BlockId id, const fountain::BlockData& block) override;

 private:
  ByteCallback on_bytes_;
  bool store_ = false;
  std::vector<std::uint8_t> stored_;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t blocks_received_ = 0;
  bool framing_ok_ = true;
};

}  // namespace fmtcp::core
