#include "core/block_manager.h"

#include <utility>

#include "common/check.h"
#include "fountain/block.h"

namespace fmtcp::core {

namespace {

fountain::SymbolEncoder make_encoder(net::BlockId id,
                                     const FmtcpParams& params, Rng rng,
                                     BlockSource* source) {
  if (source != nullptr) {
    FMTCP_CHECK(params.carry_payload);
    return fountain::SymbolEncoder(
        params.coding_field, id,
        source->build_block(id, params.block_symbols, params.symbol_bytes),
        rng, params.systematic);
  }
  if (params.carry_payload) {
    return fountain::SymbolEncoder(
        params.coding_field, id,
        fountain::make_deterministic_block(id, params.block_symbols,
                                           params.symbol_bytes),
        rng, params.systematic);
  }
  return fountain::SymbolEncoder(params.coding_field, id,
                                 params.block_symbols, params.symbol_bytes,
                                 rng, params.systematic);
}

}  // namespace

SenderBlock::SenderBlock(net::BlockId block_id, const FmtcpParams& params,
                         Rng rng, BlockSource* source)
    : id(block_id),
      k_hat(params.block_symbols),
      encoder(make_encoder(id, params, rng, source)) {}

std::uint32_t SenderBlock::total_in_flight() const {
  std::uint32_t total = 0;
  for (const auto& [subflow, count] : in_flight) total += count;
  return total;
}

BlockManager::BlockManager(sim::Simulator& simulator,
                           const FmtcpParams& params,
                           CompletionCallback on_complete,
                           BlockSource* source)
    : simulator_(simulator),
      params_(params),
      on_complete_(std::move(on_complete)),
      source_(source) {
  encoder_rng_ = simulator.fork_rng();
  params_.validate();
}

const SenderBlock* BlockManager::find(net::BlockId id) const {
  if (blocks_.empty() || id < blocks_.front().id) return nullptr;
  const std::uint64_t offset = id - blocks_.front().id;
  if (offset >= blocks_.size()) return nullptr;
  const SenderBlock& block = blocks_[offset];
  FMTCP_DCHECK(block.id == id);
  return &block;
}

SenderBlock* BlockManager::find(net::BlockId id) {
  return const_cast<SenderBlock*>(
      static_cast<const BlockManager*>(this)->find(id));
}

bool BlockManager::can_open(std::uint64_t extra) const {
  if (params_.total_blocks != 0 &&
      next_id_ + extra > params_.total_blocks) {
    return false;
  }
  if (blocks_.size() + extra > params_.max_pending_blocks) return false;
  // Application-limited: the source must have the data ready.
  return source_ == nullptr || source_->has_block(next_id_ + extra - 1);
}

SenderBlock& BlockManager::ensure_block(net::BlockId id) {
  if (SenderBlock* existing = find(id)) return *existing;
  // Virtual allocation may have (virtually) satisfied earlier prospective
  // blocks and handed this subflow a later one; open every block up to
  // `id` so the stream stays contiguous.
  FMTCP_CHECK(id >= next_id_);
  while (next_id_ <= id) {
    FMTCP_CHECK(can_open());
    blocks_.emplace_back(next_id_, params_, encoder_rng_.fork(), source_);
    // Symbol payload buffers cycle through the simulator-local pool:
    // receiver-side drops feed the next encodes.
    blocks_.back().encoder.set_buffer_pool(&simulator_.buffer_pool());
    ++next_id_;
  }
  return blocks_.back();
}

double BlockManager::k_tilde(
    const SenderBlock& block,
    const std::function<double(std::uint32_t)>& loss_of) const {
  double estimate = static_cast<double>(block.k_bar);
  for (const auto& [subflow, count] : block.in_flight) {
    estimate += static_cast<double>(count) * (1.0 - loss_of(subflow));
  }
  return estimate;
}

double BlockManager::delta_tilde(
    const SenderBlock& block,
    const std::function<double(std::uint32_t)>& loss_of) const {
  return fountain::field_decode_failure_probability(
      params_.coding_field, block.k_hat, k_tilde(block, loss_of));
}

void BlockManager::on_symbols_sent(net::BlockId id, std::uint32_t subflow,
                                   std::uint32_t count) {
  SenderBlock* block = find(id);
  FMTCP_CHECK(block != nullptr);
  block->in_flight[subflow] += count;
  block->symbols_sent += count;
  symbols_sent_ += count;
  if (block->first_symbol_sent == kNever) {
    block->first_symbol_sent = simulator_.now();
  }
}

void BlockManager::on_symbols_acked(net::BlockId id, std::uint32_t subflow,
                                    std::uint32_t count) {
  SenderBlock* block = find(id);
  if (block == nullptr) return;  // Block already closed; stale echo.
  auto it = block->in_flight.find(subflow);
  if (it == block->in_flight.end()) return;
  it->second = it->second > count ? it->second - count : 0;
}

void BlockManager::on_symbols_lost(net::BlockId id, std::uint32_t subflow,
                                   std::uint32_t count) {
  on_symbols_acked(id, subflow, count);  // Same accounting: leaves window.
}

void BlockManager::on_block_ack(const net::BlockAck& ack) {
  SenderBlock* block = find(ack.block);
  if (block == nullptr) return;  // Already closed.
  block->k_bar = std::max(block->k_bar, ack.independent_symbols);
  if (ack.decoded && !block->decoded) {
    block->decoded = true;
    block->k_bar = block->k_hat;
    ++completed_;
    const SimTime delay = block->first_symbol_sent == kNever
                              ? 0
                              : simulator_.now() - block->first_symbol_sent;
    if (on_complete_) on_complete_(block->id, delay);
    maybe_close_front();
  }
}

void BlockManager::maybe_close_front() {
  while (!blocks_.empty() && blocks_.front().decoded) {
    closed_below_ = blocks_.front().id + 1;
    blocks_.pop_front();
  }
}

}  // namespace fmtcp::core
