// Application-data interfaces for FMTCP.
//
// The sender pulls coding blocks from a BlockSource; the receiver hands
// decoded, in-order blocks to a BlockSink. The default implementations
// generate deterministic pseudo-random content and verify it byte-exactly
// (every simulation doubles as an integrity check); the stream adapters
// in core/stream.h carry real application bytes instead.
#pragma once

#include <cstdint>

#include "fountain/block.h"
#include "net/packet.h"

namespace fmtcp::core {

/// Supplies the sender's block payloads.
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  /// True if block `id` can be built right now. Blocks must become
  /// available in order: has_block(id) implies has_block(id') for all
  /// id' < id that were ever requested.
  virtual bool has_block(net::BlockId id) = 0;

  /// Builds block `id` (exactly `symbols` x `symbol_bytes`). Called at
  /// most once per id, in order, only after has_block(id) returned true.
  virtual fountain::BlockData build_block(net::BlockId id,
                                          std::uint32_t symbols,
                                          std::size_t symbol_bytes) = 0;
};

/// Consumes decoded blocks at the receiver, in block-id order.
class BlockSink {
 public:
  virtual ~BlockSink() = default;

  /// Block `id` decoded and all predecessors already delivered.
  virtual void on_block(net::BlockId id,
                        const fountain::BlockData& block) = 0;
};

/// Default source: deterministic pseudo-random content derived from the
/// block id (regenerable at the receiver for verification).
class DeterministicBlockSource final : public BlockSource {
 public:
  bool has_block(net::BlockId) override { return true; }
  fountain::BlockData build_block(net::BlockId id, std::uint32_t symbols,
                                  std::size_t symbol_bytes) override {
    return fountain::make_deterministic_block(id, symbols, symbol_bytes);
  }
};

}  // namespace fmtcp::core
