#include "core/allocator.h"

#include <map>

#include "common/check.h"
#include "fountain/random_linear.h"

namespace fmtcp::core {

namespace {
/// Safety valve on the virtual-allocation loop; in sane configurations the
/// pending subflow is reached within a few window-loads of rounds.
constexpr int kMaxRounds = 100000;
}  // namespace

std::uint32_t PacketPlan::total_symbols() const {
  std::uint32_t total = 0;
  for (const Entry& e : entries) total += e.symbols;
  return total;
}

Allocator::Allocator(const AllocatorEnv& env, AllocationMode mode)
    : env_(env), mode_(mode) {}

std::optional<PacketPlan> Allocator::allocate(
    std::uint32_t pending_id) const {
  const std::vector<SubflowSnapshot> snaps = env_.subflow_snapshots();
  FMTCP_CHECK(!snaps.empty());
  bool pending_found = false;
  for (const SubflowSnapshot& s : snaps) {
    pending_found = pending_found || s.id == pending_id;
  }
  FMTCP_CHECK(pending_found);

  const double delta_hat = env_.delta_hat();
  const std::size_t sym_bytes = env_.symbol_wire_bytes();

  std::vector<std::uint64_t> assigned(snaps.size(), 0);
  // Weighted virtual contribution to k̃ per block: each symbol virtually
  // placed on subflow f adds (1 - p_f), mirroring Eq. 8.
  std::map<net::BlockId, double> virtual_k;

  // Builds the description vector V for one packet on subflow `snap`,
  // consuming blocks in sequence order (rules R1/R2): symbols go to the
  // first block that is not yet δ̂-complete under real + virtual k̃.
  const auto fill_packet = [&](const SubflowSnapshot& snap) {
    PacketPlan plan;
    std::size_t used = 0;
    for (std::size_t bi = 0;; ++bi) {
      if (used + sym_bytes > snap.mss_payload) break;
      const std::optional<net::BlockId> id = env_.block_at(bi);
      if (!id.has_value()) break;
      const std::uint32_t k_hat = env_.block_k_hat(*id);
      double k = env_.real_k_tilde(*id) + virtual_k[*id];
      std::uint32_t count = 0;
      while (used + sym_bytes <= snap.mss_payload &&
             fountain::decode_failure_probability(k_hat, k) >= delta_hat) {
        ++count;
        used += sym_bytes;
        k += 1.0 - snap.loss;
      }
      if (count > 0) {
        plan.entries.push_back({*id, count});
        virtual_k[*id] = k - env_.real_k_tilde(*id);
      }
    }
    plan.payload_bytes = used;
    return plan;
  };

  if (mode_ == AllocationMode::kGreedy) {
    for (const SubflowSnapshot& s : snaps) {
      if (s.id != pending_id) continue;
      PacketPlan plan = fill_packet(s);
      if (plan.entries.empty()) return std::nullopt;
      return plan;
    }
    return std::nullopt;
  }

  for (int round = 0; round < kMaxRounds; ++round) {
    // f <- argmin_g EAT_g (ties to the lower subflow id).
    std::size_t best = 0;
    SimTime best_eat = kNever;
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      const SimTime eat = expected_arrival_time(snaps[i], assigned[i]);
      if (eat < best_eat ||
          (eat == best_eat && snaps[i].id < snaps[best].id)) {
        best = i;
        best_eat = eat;
      }
    }

    PacketPlan plan = fill_packet(snaps[best]);
    if (plan.entries.empty()) {
      // Every reachable block is δ̂-complete: rule R1 forbids sending
      // anything, on this subflow or any other.
      return std::nullopt;
    }
    ++assigned[best];
    if (snaps[best].id == pending_id) return plan;
  }

  // Degenerate EAT configuration: serve the pending subflow directly
  // rather than spin (virtual k̃ built so far is kept, erring toward
  // fewer redundant symbols).
  for (const SubflowSnapshot& s : snaps) {
    if (s.id == pending_id) {
      PacketPlan plan = fill_packet(s);
      if (plan.entries.empty()) return std::nullopt;
      return plan;
    }
  }
  return std::nullopt;
}

}  // namespace fmtcp::core
