#include "core/connection.h"

#include "tcp/wiring.h"

namespace fmtcp::core {

FmtcpConnection::FmtcpConnection(sim::Simulator& simulator,
                                 net::Topology& topology,
                                 const FmtcpConnectionConfig& config)
    : goodput_(config.goodput_bin) {
  sender_ = std::make_unique<FmtcpSender>(simulator, config.params, &delays_,
                                          config.source, config.observer);
  receiver_ = std::make_unique<FmtcpReceiver>(
      simulator, config.params, &goodput_, config.block_sink,
      config.observer);

  tcp::WiringOptions options;
  options.subflow = config.subflow;
  options.subflow.observer = config.observer;
  options.receiver = config.receiver;
  options.fresh_payload_on_retransmit = true;
  options.seed_loss_hint = config.seed_loss_hint;
  if (config.use_lia) {
    lia_group_ = std::make_unique<tcp::LiaGroup>();
    options.make_cc = [this, reno = config.subflow.reno](std::uint32_t) {
      return std::make_unique<tcp::LiaCc>(*lia_group_, reno);
    };
  }

  tcp::WiredSubflows wired =
      tcp::wire_subflows(simulator, topology, *sender_, *receiver_, options);
  subflows_ = std::move(wired.subflows);
  subflow_receivers_ = std::move(wired.subflow_receivers);
  for (auto& subflow : subflows_) sender_->register_subflow(subflow.get());
}

}  // namespace fmtcp::core
