// Data-allocation Algorithm 1 (paper §IV-B) with virtual allocation.
//
// When subflow f_p has a transmission opportunity, the allocator repeats:
// pick the subflow with the smallest EAT, virtually fill one packet for it
// with symbols of the first blocks whose expected decoding-failure
// probability δ̃ is still ≥ δ̂ (rules R1/R2), advance that subflow's EAT —
// until the chosen subflow *is* f_p, whose packet plan is returned and
// materialised by the sender. Virtual assignments are per-call scratch
// state only, exactly as §IV-B describes ("no need to physically generate
// symbols ... when f_v has transmission opportunity later, it will trigger
// the allocation algorithm [again]").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/eat.h"
#include "core/params.h"
#include "net/packet.h"

namespace fmtcp::core {

/// What to put into one packet: the description vector V of Algorithm 1.
struct PacketPlan {
  struct Entry {
    net::BlockId block;
    std::uint32_t symbols;
  };
  std::vector<Entry> entries;
  std::size_t payload_bytes = 0;

  std::uint32_t total_symbols() const;
};

/// State the allocator reads; implemented by FmtcpSender, mocked in tests.
class AllocatorEnv {
 public:
  virtual ~AllocatorEnv() = default;

  /// Snapshot of every subflow, indexed by position (ids unique).
  virtual std::vector<SubflowSnapshot> subflow_snapshots() const = 0;

  /// Id of the index-th allocatable block in sequence order. Existing
  /// open blocks come first; ids past them are *prospective* blocks the
  /// application could still supply (respecting the pending-block cap),
  /// or nullopt when exhausted.
  virtual std::optional<net::BlockId> block_at(std::size_t index) const = 0;

  /// k̂ of `block`.
  virtual std::uint32_t block_k_hat(net::BlockId block) const = 0;

  /// Real (non-virtual) k̃ of `block` from current k̄/in-flight state
  /// (Eq. 8). Prospective blocks report 0.
  virtual double real_k_tilde(net::BlockId block) const = 0;

  /// δ̂ threshold.
  virtual double delta_hat() const = 0;

  /// Wire bytes per symbol inside a packet.
  virtual std::size_t symbol_wire_bytes() const = 0;
};

class Allocator {
 public:
  explicit Allocator(const AllocatorEnv& env,
                     AllocationMode mode = AllocationMode::kEatVirtual);

  /// Runs Algorithm 1 for the pending subflow `pending_id`; nullopt when
  /// there is nothing to send (every reachable block is δ̂-complete).
  /// In kGreedy mode the virtual-allocation loop is skipped and the
  /// pending subflow is served the first incomplete blocks directly.
  std::optional<PacketPlan> allocate(std::uint32_t pending_id) const;

  AllocationMode mode() const { return mode_; }

 private:
  const AllocatorEnv& env_;
  AllocationMode mode_;
};

}  // namespace fmtcp::core
