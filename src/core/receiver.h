// FMTCP receiver: symbol aggregation, per-block decoding, in-order block
// delivery, and block-ACK feedback (paper §III-A receiver side).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "core/block_source.h"
#include "core/params.h"
#include "fountain/codec.h"
#include "metrics/goodput.h"
#include "net/packet.h"
#include "obs/observer.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::core {

class FmtcpReceiver final : public tcp::DataSink {
 public:
  /// `goodput` may be null (no measurement). Delivered application bytes
  /// are counted when a block leaves the receive buffer in order.
  /// `sink` may be null; when set (requires params.carry_payload) it
  /// receives every decoded block in id order — the application-data
  /// path (see core/stream.h).
  /// `observer` may be null; when set, per-block rank progress,
  /// redundant-symbol detections, and decode completions land on its
  /// timeline and fmtcp.* metrics, and the decoders' coding-plane costs
  /// land on the fountain.* counters.
  FmtcpReceiver(sim::Simulator& simulator, const FmtcpParams& params,
                metrics::GoodputMeter* goodput = nullptr,
                BlockSink* sink = nullptr,
                obs::Observer* observer = nullptr);

  // tcp::DataSink
  void on_segment(std::uint32_t subflow, net::Packet& p) override;
  void fill_ack(std::uint32_t subflow, const net::Packet& data,
                net::Packet& ack, std::size_t& extra_bytes) override;

  /// Next block id awaited for in-order delivery.
  net::BlockId deliver_next() const { return deliver_next_; }

  std::uint64_t blocks_delivered() const { return blocks_delivered_; }

  /// Symbols that arrived but were linearly dependent or targeted an
  /// already-decoded block (pure redundancy).
  std::uint64_t redundant_symbols() const { return redundant_symbols_; }

  std::uint64_t total_symbols_received() const { return symbols_received_; }

  /// Peak receive-buffer occupancy (undecoded symbol rows + decoded
  /// blocks awaiting in-order delivery).
  std::size_t max_buffered_bytes() const { return max_buffered_; }

  /// False if any decoded block failed payload verification (only
  /// meaningful with params.carry_payload).
  bool payload_verified() const { return payload_ok_; }

 private:
  bool is_decoded(net::BlockId id) const;
  /// Counts a redundant symbol and emits its timeline event.
  void note_redundant(std::uint32_t subflow, net::BlockId block,
                      std::uint32_t rank);
  void deliver_ready_blocks();
  void note_buffer_occupancy();
  net::BlockAck make_block_ack(net::BlockId id) const;

  sim::Simulator& simulator_;
  FmtcpParams params_;
  metrics::GoodputMeter* goodput_;
  BlockSink* sink_;

  std::map<net::BlockId, fountain::SymbolDecoder> decoders_;
  std::set<net::BlockId> decoded_waiting_;  ///< Decoded, awaiting order.
  /// Decoded payloads held for the sink until in-order delivery.
  std::map<net::BlockId, fountain::BlockData> decoded_data_;
  std::deque<net::BlockId> recently_decoded_;
  net::BlockId deliver_next_ = 0;

  std::uint64_t blocks_delivered_ = 0;
  std::uint64_t redundant_symbols_ = 0;
  std::uint64_t symbols_received_ = 0;
  std::size_t max_buffered_ = 0;
  bool payload_ok_ = true;

  // Observability (no-ops when obs_ is null).
  obs::Observer* obs_ = nullptr;
  obs::Counter obs_symbols_;
  obs::Counter obs_redundant_;
  obs::Counter obs_blocks_decoded_;
  obs::Counter obs_blocks_delivered_;
  /// Shared by every decoder of this receiver (fountain.* counters;
  /// null-safe handles when no observer is attached).
  fountain::CodingMetrics coding_metrics_;
  /// Shared decode() workspace: solve/M4R table storage amortises across
  /// every block this receiver decodes.
  fountain::DecodeScratch decode_scratch_;
};

}  // namespace fmtcp::core
