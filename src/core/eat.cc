#include "core/eat.h"

#include <algorithm>

namespace fmtcp::core {

SubflowSnapshot snapshot_subflow(const tcp::Subflow& subflow) {
  SubflowSnapshot snap;
  snap.id = subflow.id();
  snap.mss_payload = subflow.mss_payload();
  snap.window_space = subflow.window_space();
  snap.cwnd = std::max(1.0, subflow.cwnd());
  snap.edt = subflow.expected_edt();
  snap.rt = subflow.expected_rt();
  snap.tau = subflow.time_since_first_unacked();
  snap.loss = subflow.loss_estimate();
  return snap;
}

SimTime expected_arrival_time(const SubflowSnapshot& subflow,
                              std::uint64_t virtually_assigned) {
  if (virtually_assigned < subflow.window_space) return subflow.edt;

  const SimTime first_wait =
      std::max(subflow.edt, subflow.edt + subflow.rt - subflow.tau);
  const std::uint64_t extra = virtually_assigned - subflow.window_space;
  // Clamp to one tick so repeated virtual assignment always raises EAT
  // (termination of the Algorithm 1 loop).
  const auto ack_spacing = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(subflow.rt) / subflow.cwnd));
  return first_wait + static_cast<SimTime>(extra) * ack_spacing;
}

}  // namespace fmtcp::core
