#include "sim/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/trace/span.h"

namespace fmtcp::sim {

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->owner != nullptr) state_->owner->note_cancelled();
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

PendingEvent::operator EventHandle() const {
  return scheduler_->make_handle(seq_);
}

Scheduler::~Scheduler() {
  // Handles may outlive the scheduler; sever the back-pointers so their
  // cancel() calls become no-ops instead of touching freed memory.
  for (Entry& entry : heap_) {
    if (entry.state) entry.state->owner = nullptr;
  }
}

PendingEvent Scheduler::schedule_at(SimTime when, const char* tag,
                                    UniqueFunction fn) {
  FMTCP_CHECK(when >= now_);
  FMTCP_CHECK(static_cast<bool>(fn));
  FMTCP_CHECK(tag != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{when, seq, tag, std::move(fn), nullptr});
  sift_up(heap_.size() - 1);
  return PendingEvent(this, seq);
}

PendingEvent Scheduler::schedule_in(SimTime delay, const char* tag,
                                    UniqueFunction fn) {
  FMTCP_CHECK(delay >= 0);
  return schedule_at(now_ + delay, tag, std::move(fn));
}

void Scheduler::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
  last_push_index_ = i;
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) return;
    std::size_t least = left;
    const std::size_t right = left + 1;
    if (right < n && before(heap_[right], heap_[left])) least = right;
    if (!before(heap_[least], heap_[i])) return;
    std::swap(heap_[i], heap_[least]);
    i = least;
  }
}

Scheduler::Entry Scheduler::pop_top() {
  FMTCP_DCHECK(!heap_.empty());
  Entry top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

EventHandle Scheduler::make_handle(std::uint64_t seq) {
  Entry* entry = nullptr;
  if (last_push_index_ < heap_.size() &&
      heap_[last_push_index_].seq == seq) {
    entry = &heap_[last_push_index_];
  } else {
    // The conversion normally happens in the statement that scheduled
    // the event, before any other heap operation; fall back to a scan if
    // a future caller holds the proxy across other scheduling.
    for (Entry& e : heap_) {
      if (e.seq == seq) {
        entry = &e;
        break;
      }
    }
  }
  if (entry == nullptr) return EventHandle();  // Already executed.
  if (!entry->state) {
    entry->state = acquire_state();
  }
  ++handles_created_;
  return EventHandle(entry->state);
}

std::shared_ptr<EventHandle::State> Scheduler::acquire_state() {
  if (!state_pool_.empty()) {
    std::shared_ptr<EventHandle::State> state =
        std::move(state_pool_.back());
    state_pool_.pop_back();
    state->cancelled = false;
    state->fired = false;
    state->owner = this;
    ++states_reused_;
    return state;
  }
  auto state = std::make_shared<EventHandle::State>();
  state->owner = this;
  return state;
}

void Scheduler::recycle_state(
    std::shared_ptr<EventHandle::State>&& state) {
  if (!state) return;
  state->owner = nullptr;
  // Recycle only when the queue held the last reference; a live handle
  // keeps the block until it is itself destroyed (outlive-safety).
  if (state.use_count() == 1) {
    state_pool_.push_back(std::move(state));
  } else {
    state.reset();
  }
}

void Scheduler::note_cancelled() {
  ++cancelled_in_queue_;
  if (heap_.size() >= kCompactMinQueue &&
      cancelled_in_queue_ > heap_.size() / 2) {
    compact();
  }
}

void Scheduler::compact() {
  FMTCP_SPAN_ARG("sched.compact", heap_.size());
  ++compactions_;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].state && heap_[i].state->cancelled) {
      recycle_state(std::move(heap_[i].state));
      continue;
    }
    if (kept != i) heap_[kept] = std::move(heap_[i]);
    ++kept;
  }
  heap_.resize(kept);
  cancelled_in_queue_ = 0;
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const Entry& a, const Entry& b) {
                   return before(b, a);  // make_heap wants "less" = later.
                 });
  // The heap moved under the push hint; invalidate it.
  last_push_index_ = heap_.size();
}

void Scheduler::note_executed(const char* tag) {
  for (auto& [known, count] : executed_by_tag_) {
    if (known == tag) {
      ++count;
      return;
    }
  }
  executed_by_tag_.emplace_back(tag, 1);
}

std::vector<std::pair<std::string, std::uint64_t>>
Scheduler::dispatch_profile() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(executed_by_tag_.size());
  for (const auto& [tag, count] : executed_by_tag_) {
    out.emplace_back(tag, count);
  }
  return out;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    Entry entry = pop_top();
    if (entry.state) {
      if (entry.state->cancelled) {
        FMTCP_DCHECK(cancelled_in_queue_ > 0);
        --cancelled_in_queue_;
        recycle_state(std::move(entry.state));
        continue;
      }
      entry.state->fired = true;
    }
    FMTCP_DCHECK(entry.when >= now_);
    now_ = entry.when;
    ++executed_;
    if (profiling_) note_executed(entry.tag);
    recycle_state(std::move(entry.state));
    entry.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime deadline) {
  FMTCP_CHECK(deadline >= now_);
  // Records events executed in this slice as the span argument.
  obs::trace::SpanScope span("sched.run_until");
  const std::uint64_t executed_before = executed_;
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (top.state && top.state->cancelled) {
      Entry dead = pop_top();
      FMTCP_DCHECK(cancelled_in_queue_ > 0);
      --cancelled_in_queue_;
      recycle_state(std::move(dead.state));
      continue;
    }
    if (top.when > deadline) break;
    step();
  }
  now_ = deadline;
  span.set_arg(executed_ - executed_before);
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace fmtcp::sim
