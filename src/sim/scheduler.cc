#include "sim/scheduler.h"

#include <utility>

#include "common/check.h"

namespace fmtcp::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Scheduler::schedule_at(SimTime when, std::function<void()> fn) {
  FMTCP_CHECK(when >= now_);
  FMTCP_CHECK(fn != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

EventHandle Scheduler::schedule_in(SimTime delay, std::function<void()> fn) {
  FMTCP_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, standard
    // practice for heap-of-move-only payloads.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (entry.state->cancelled) continue;
    FMTCP_DCHECK(entry.when >= now_);
    now_ = entry.when;
    entry.state->fired = true;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime deadline) {
  FMTCP_CHECK(deadline >= now_);
  while (!queue_.empty()) {
    if (queue_.top().state->cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    step();
  }
  now_ = deadline;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace fmtcp::sim
