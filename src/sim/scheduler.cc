#include "sim/scheduler.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "common/check.h"
#include "obs/trace/span.h"

namespace fmtcp::sim {

namespace {
constexpr SimTime kMaxDeadline = std::numeric_limits<SimTime>::max();
}  // namespace

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->owner != nullptr) state_->owner->note_cancelled(state_.get());
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

PendingEvent::operator EventHandle() const {
  return scheduler_->make_handle(seq_);
}

Scheduler::~Scheduler() {
  // Handles may outlive the scheduler; sever the back-pointers so their
  // cancel() calls become no-ops instead of touching freed memory.
  for (auto& level : wheel_) {
    for (auto& bucket : level) {
      for (Entry& entry : bucket) {
        if (entry.state) entry.state->owner = nullptr;
      }
    }
  }
  for (Entry& entry : run_queue_) {
    if (entry.state) entry.state->owner = nullptr;
  }
  for (Entry& entry : overflow_) {
    if (entry.state) entry.state->owner = nullptr;
  }
}

PendingEvent Scheduler::schedule_at(SimTime when, const char* tag,
                                    UniqueFunction fn) {
  FMTCP_CHECK(when >= now_);
  FMTCP_CHECK(static_cast<bool>(fn));
  FMTCP_CHECK(tag != nullptr);
  // User code only runs with the wheel cursor parked on the clock; the
  // placement below relies on it.
  FMTCP_DCHECK(cursor_ == now_);
  const std::uint64_t seq = next_seq_++;
  if (recorder_ != nullptr) {
    recorder_->on_schedule(current_firing_seq_, seq, when, tag);
  }
  if (run_active_ &&
      (static_cast<std::uint64_t>(when) >> kBaseBits) == run_window_) {
    // Newcomer inside the window being drained: the wheel slot for this
    // window is already swapped out, so the run queue is the only place
    // it can go. The entry itself is appended (entries never move); its
    // index splices into the live part of the order. Its seq is the
    // largest so far, so the slot is right before the first entry with
    // a strictly later time.
    const auto index = static_cast<std::uint32_t>(run_queue_.size());
    run_queue_.push_back(Entry{when, seq, tag, std::move(fn), nullptr});
    const auto pos = std::upper_bound(
        run_order_.begin() + static_cast<std::ptrdiff_t>(run_head_),
        run_order_.end(), when, [this](SimTime t, std::uint32_t i) {
          return t < run_queue_[i].when;
        });
    run_order_.insert(pos, index);
    last_where_ = kWhereRunQueue;
    last_index_ = index;
  } else {
    const auto [where, index] =
        place(Entry{when, seq, tag, std::move(fn), nullptr});
    last_where_ = where;
    last_index_ = index;
  }
  last_seq_ = seq;
  ++size_;
  return PendingEvent(this, seq);
}

PendingEvent Scheduler::schedule_in(SimTime delay, const char* tag,
                                    UniqueFunction fn) {
  FMTCP_CHECK(delay >= 0);
  return schedule_at(now_ + delay, tag, std::move(fn));
}

std::uint64_t Scheduler::bucket_start(int level, std::size_t slot) const {
  const int shift = kBaseBits + kSlotBits * (level + 1);
  const std::uint64_t prefix =
      (static_cast<std::uint64_t>(cursor_) >> shift) << shift;
  return prefix | (static_cast<std::uint64_t>(slot)
                   << (kBaseBits + kSlotBits * level));
}

std::pair<std::uint32_t, std::uint32_t> Scheduler::place(Entry&& entry) {
  const std::uint64_t t = static_cast<std::uint64_t>(entry.when);
  const std::uint64_t diff = t ^ static_cast<std::uint64_t>(cursor_);
  if ((diff >> kWheelBits) != 0) {
    // Beyond the wheel horizon: far-future overflow heap.
    ++overflow_scheduled_;
    if (entry.state) entry.state->where = kWhereOverflow;
    overflow_.push_back(std::move(entry));
    std::push_heap(overflow_.begin(), overflow_.end(),
                   [](const Entry& a, const Entry& b) {
                     return before(b, a);  // min-heap on (when, seq)
                   });
    return {kWhereOverflow, 0};
  }
  const int level =
      (diff >> kBaseBits) == 0
          ? 0
          : (63 - std::countl_zero(diff) - kBaseBits) / kSlotBits;
  const std::size_t slot =
      (t >> (kBaseBits + kSlotBits * level)) & (kSlots - 1);
  std::vector<Entry>& bucket = wheel_[level][slot];
  const std::uint32_t where = where_of(level, slot);
  const auto index = static_cast<std::uint32_t>(bucket.size());
  if (entry.state) {
    entry.state->where = where;
    entry.state->index = index;
  }
  bucket.push_back(std::move(entry));
  occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
  return {where, index};
}

bool Scheduler::first_occupied(int level, std::size_t* slot) const {
  const std::size_t from = cursor_slot(level);
  std::size_t word = from >> 6;
  std::uint64_t bits = occupied_[level][word] & (~std::uint64_t{0}
                                                 << (from & 63));
  for (;;) {
    if (bits != 0) {
      *slot = word * 64 +
              static_cast<std::size_t>(std::countr_zero(bits));
      return true;
    }
    if (++word == kBitmapWords) return false;
    bits = occupied_[level][word];
  }
}

void Scheduler::cascade(int level, std::size_t slot) {
  std::vector<Entry>& bucket = wheel_[level][slot];
  FMTCP_DCHECK(!bucket.empty());
  ++cascades_;
  cascade_scratch_.swap(bucket);
  occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  for (Entry& entry : cascade_scratch_) {
    // Wheel buckets never hold cancelled entries (those are removed on
    // cancel), and every entry lands at least one level lower because
    // the cursor now shares its top (level+1) bytes.
    FMTCP_DCHECK(!(entry.state && entry.state->cancelled));
    place(std::move(entry));
  }
  cascade_scratch_.clear();
}

void Scheduler::reap_overflow_top() {
  while (!overflow_.empty() && overflow_.front().state &&
         overflow_.front().state->cancelled) {
    std::pop_heap(overflow_.begin(), overflow_.end(),
                  [](const Entry& a, const Entry& b) {
                    return before(b, a);
                  });
    Entry dead = std::move(overflow_.back());
    overflow_.pop_back();
    FMTCP_DCHECK(overflow_cancelled_ > 0);
    --overflow_cancelled_;
    --size_;
    dead.state->where = kWhereNone;
    recycle_state(std::move(dead.state));
  }
}

void Scheduler::refill_from_overflow() {
  std::uint64_t moved = 0;
  for (;;) {
    reap_overflow_top();
    if (overflow_.empty()) break;
    const std::uint64_t diff =
        static_cast<std::uint64_t>(overflow_.front().when) ^
        static_cast<std::uint64_t>(cursor_);
    if ((diff >> kWheelBits) != 0) break;
    std::pop_heap(overflow_.begin(), overflow_.end(),
                  [](const Entry& a, const Entry& b) {
                    return before(b, a);
                  });
    Entry entry = std::move(overflow_.back());
    overflow_.pop_back();
    place(std::move(entry));
    ++moved;
  }
  FMTCP_COUNT("sched.overflow.refill", moved);
}

bool Scheduler::build_run_queue(SimTime deadline) {
  for (;;) {
    reap_overflow_top();

    // Candidate buckets: first occupied slot at or after the cursor per
    // level. On equal starts the higher level must go first — it may
    // still hold entries for the same timestamp that have to merge into
    // the batch — so scan top-down and prefer strictly smaller starts.
    int best_level = -1;
    std::size_t best_slot = 0;
    std::uint64_t best_start = ~std::uint64_t{0};
    for (int level = kLevels - 1; level >= 0; --level) {
      std::size_t slot = 0;
      if (!first_occupied(level, &slot)) continue;
      const std::uint64_t start = bucket_start(level, slot);
      if (start < best_start) {
        best_start = start;
        best_level = level;
        best_slot = slot;
      }
    }

    // The overflow minimum joins the race on the same terms (ties also
    // drain it first, for the same merge reason).
    if (!overflow_.empty() &&
        static_cast<std::uint64_t>(overflow_.front().when) <= best_start) {
      const SimTime top_when = overflow_.front().when;
      if (top_when > deadline) return false;
      if (cursor_ < top_when) cursor_ = top_when;
      refill_from_overflow();
      continue;
    }

    if (best_level < 0) return false;  // Nothing queued anywhere.
    if (best_start > static_cast<std::uint64_t>(deadline)) return false;
    // A bucket's start can sit below the cursor (its low bytes are
    // truncated); never move the cursor backwards.
    if (static_cast<std::uint64_t>(cursor_) < best_start) {
      cursor_ = static_cast<SimTime>(best_start);
    }
    if (best_level > 0) {
      cascade(best_level, best_slot);
      continue;
    }

    // A level-0 bucket holds one 2^kBaseBits-ns window: it becomes the
    // run queue, sorted by (when, seq). Window starts are 2^kBaseBits
    // apart, so every other bucket's events come strictly later and the
    // local sort restores the exact global heap order.
    std::vector<Entry>& bucket = wheel_[0][best_slot];
    FMTCP_DCHECK(run_queue_.empty());
    run_queue_.swap(bucket);
    occupied_[0][best_slot >> 6] &=
        ~(std::uint64_t{1} << (best_slot & 63));
    run_order_.resize(run_queue_.size());
    for (std::uint32_t i = 0; i < run_order_.size(); ++i) {
      run_order_[i] = i;
    }
    std::sort(run_order_.begin(), run_order_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return before(run_queue_[a], run_queue_[b]);
              });
    for (Entry& entry : run_queue_) {
      if (entry.state) entry.state->where = kWhereRunQueue;
    }
    run_head_ = 0;
    run_window_ = best_start >> kBaseBits;
    run_active_ = true;
    return true;
  }
}

bool Scheduler::dispatch_one(SimTime deadline) {
  for (;;) {
    if (run_head_ < run_order_.size()) {
      Entry& slot = run_queue_[run_order_[run_head_]];
      // A window can straddle the deadline: leave the tail parked for
      // the next slice (run_until's cursor clamp stops at the deadline,
      // below every parked time, so placement stays consistent).
      if (slot.when > deadline) return false;
      ++run_head_;
      Entry entry = std::move(slot);
      // Moving leaves scalars behind; clobber the seq so handle lookups
      // can never match an executed entry.
      slot.seq = ~0ull;
      if (entry.state) {
        if (entry.state->cancelled) {
          --size_;
          entry.state->where = kWhereNone;
          recycle_state(std::move(entry.state));
          continue;
        }
        entry.state->fired = true;
        entry.state->where = kWhereNone;
      }
      FMTCP_DCHECK(entry.when >= now_);
      // Advance the cursor with the clock: the entry is the global
      // minimum (other buckets start strictly later), so no pending
      // event is left behind it, and schedule_at's cursor == now
      // invariant holds inside the callback.
      now_ = entry.when;
      cursor_ = entry.when;
      --size_;
      ++executed_;
      if (profiling_) note_executed(entry.tag);
      recycle_state(std::move(entry.state));
      const std::uint64_t parent = current_firing_seq_;
      current_firing_seq_ = entry.seq;
      entry.fn();
      current_firing_seq_ = parent;
      return true;
    }
    if (run_active_) {
      run_queue_.clear();
      run_order_.clear();
      run_head_ = 0;
      run_active_ = false;
    }
    if (!build_run_queue(deadline)) return false;
  }
}

EventHandle Scheduler::make_handle(std::uint64_t seq) {
  Entry* entry = nullptr;
  std::uint32_t where = kWhereNone;
  std::uint32_t index = 0;
  if (seq == last_seq_) {
    // The conversion normally happens in the statement that scheduled
    // the event, before any other scheduler operation, so the push hint
    // is valid; the seq check rejects a stale hint.
    if (last_where_ == kWhereRunQueue) {
      // Executed entries have a clobbered seq, so a stale hint into the
      // drained prefix cannot match.
      if (last_index_ < run_queue_.size() &&
          run_queue_[last_index_].seq == seq) {
        entry = &run_queue_[last_index_];
        where = kWhereRunQueue;
        index = last_index_;
      }
    } else if (last_where_ < kLevels * kSlots) {
      std::vector<Entry>& bucket =
          wheel_[last_where_ / kSlots][last_where_ % kSlots];
      if (last_index_ < bucket.size() &&
          bucket[last_index_].seq == seq) {
        entry = &bucket[last_index_];
        where = last_where_;
        index = last_index_;
      }
    }
    // Overflow pushes sift, so the hint records no index; the overflow
    // scan below finds them.
  }
  if (entry == nullptr) {
    for (std::size_t i = run_head_; i < run_order_.size() && !entry; ++i) {
      Entry& candidate = run_queue_[run_order_[i]];
      if (candidate.seq == seq) {
        entry = &candidate;
        where = kWhereRunQueue;
        index = run_order_[i];
      }
    }
    for (int level = 0; level < kLevels && !entry; ++level) {
      for (std::size_t slot = 0; slot < kSlots && !entry; ++slot) {
        std::vector<Entry>& bucket = wheel_[level][slot];
        for (std::size_t i = 0; i < bucket.size(); ++i) {
          if (bucket[i].seq == seq) {
            entry = &bucket[i];
            where = where_of(level, slot);
            index = static_cast<std::uint32_t>(i);
            break;
          }
        }
      }
    }
    for (std::size_t i = 0; i < overflow_.size() && !entry; ++i) {
      if (overflow_[i].seq == seq) {
        entry = &overflow_[i];
        where = kWhereOverflow;
      }
    }
  }
  if (entry == nullptr) return EventHandle();  // Already executed.
  if (!entry->state) {
    entry->state = acquire_state();
    entry->state->seq = seq;
    entry->state->where = where;
    entry->state->index = index;
  }
  ++handles_created_;
  if (recorder_ != nullptr) {
    recorder_->on_handle(current_firing_seq_, seq);
  }
  return EventHandle(entry->state);
}

std::shared_ptr<EventHandle::State> Scheduler::acquire_state() {
  if (state_pool_.empty() && !retired_states_.empty()) {
    // Sweep retirees whose handles have all died back into the pool. If
    // the sweep reclaims nothing (every retiree still has a live
    // handle), drop them instead of rescanning forever — their blocks
    // free when the handles do, they just stop being poolable.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < retired_states_.size(); ++i) {
      if (retired_states_[i].use_count() == 1) {
        state_pool_.push_back(std::move(retired_states_[i]));
        continue;
      }
      if (kept != i) retired_states_[kept] = std::move(retired_states_[i]);
      ++kept;
    }
    retired_states_.resize(state_pool_.empty() ? 0 : kept);
  }
  if (!state_pool_.empty()) {
    std::shared_ptr<EventHandle::State> state =
        std::move(state_pool_.back());
    state_pool_.pop_back();
    state->cancelled = false;
    state->fired = false;
    state->owner = this;
    ++states_reused_;
    return state;
  }
  auto state = std::make_shared<EventHandle::State>();
  state->owner = this;
  return state;
}

void Scheduler::recycle_state(
    std::shared_ptr<EventHandle::State>&& state) {
  if (!state) return;
  state->owner = nullptr;
  // Recycle directly when the queue held the last reference; with a
  // live handle still out there, park the block in the retired list
  // until the handle dies (outlive-safety: flags stay frozen meanwhile).
  if (state.use_count() == 1) {
    state_pool_.push_back(std::move(state));
  } else {
    retired_states_.push_back(std::move(state));
  }
}

void Scheduler::note_cancelled(EventHandle::State* state) {
  if (recorder_ != nullptr) {
    recorder_->on_cancel(current_firing_seq_, state->seq);
  }
  if (state->where == kWhereRunQueue) {
    // The dispatch loop reaps it (skipped, not executed).
    return;
  }
  if (state->where == kWhereOverflow) {
    ++overflow_cancelled_;
    if (overflow_.size() >= kCompactMinOverflow &&
        overflow_cancelled_ > overflow_.size() / 2) {
      compact_overflow();
    }
    return;
  }
  FMTCP_DCHECK(state->where < kLevels * kSlots);
  // Wheel entry: swap-remove in place. Bucket order never affects
  // dispatch order (level-0 batches are seq-sorted), so this is O(1).
  std::vector<Entry>& bucket =
      wheel_[state->where / kSlots][state->where % kSlots];
  const std::size_t slot = state->where % kSlots;
  const int level = static_cast<int>(state->where / kSlots);
  const std::size_t index = state->index;
  FMTCP_DCHECK(index < bucket.size() && bucket[index].seq == state->seq);
  Entry removed = std::move(bucket[index]);
  if (index + 1 != bucket.size()) {
    bucket[index] = std::move(bucket.back());
    if (bucket[index].state) {
      bucket[index].state->index = static_cast<std::uint32_t>(index);
    }
  }
  bucket.pop_back();
  if (bucket.empty()) {
    occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  --size_;
  ++cancelled_removed_;
  removed.state->where = kWhereNone;
  recycle_state(std::move(removed.state));
  // `removed.fn` (and whatever it captured) is destroyed here, after the
  // wheel is consistent again — its destructor may itself cancel events.
}

void Scheduler::compact_overflow() {
  FMTCP_SPAN_ARG("sched.compact", overflow_.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < overflow_.size(); ++i) {
    if (overflow_[i].state && overflow_[i].state->cancelled) {
      overflow_[i].state->where = kWhereNone;
      recycle_state(std::move(overflow_[i].state));
      continue;
    }
    if (kept != i) overflow_[kept] = std::move(overflow_[i]);
    ++kept;
  }
  size_ -= overflow_.size() - kept;
  overflow_.resize(kept);
  overflow_cancelled_ = 0;
  std::make_heap(overflow_.begin(), overflow_.end(),
                 [](const Entry& a, const Entry& b) {
                   return before(b, a);
                 });
}

void Scheduler::note_executed(const char* tag) {
  for (auto& [known, count] : executed_by_tag_) {
    if (known == tag) {
      ++count;
      return;
    }
  }
  executed_by_tag_.emplace_back(tag, 1);
}

std::vector<std::pair<std::string, std::uint64_t>>
Scheduler::dispatch_profile() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(executed_by_tag_.size());
  for (const auto& [tag, count] : executed_by_tag_) {
    out.emplace_back(tag, count);
  }
  return out;
}

bool Scheduler::step() { return dispatch_one(kMaxDeadline); }

void Scheduler::run_until(SimTime deadline) {
  FMTCP_CHECK(deadline >= now_);
  // Records events executed in this slice as the span argument.
  obs::trace::SpanScope span("sched.run_until");
  const std::uint64_t executed_before = executed_;
  while (dispatch_one(deadline)) {
  }
  now_ = deadline;
  if (cursor_ < now_) cursor_ = now_;
  span.set_arg(executed_ - executed_before);
}

void Scheduler::run() {
  while (dispatch_one(kMaxDeadline)) {
  }
}

}  // namespace fmtcp::sim
