#include "sim/scheduler.h"

#include <utility>

#include "common/check.h"

namespace fmtcp::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Scheduler::schedule_at(SimTime when, const char* tag,
                                   std::function<void()> fn) {
  FMTCP_CHECK(when >= now_);
  FMTCP_CHECK(fn != nullptr);
  FMTCP_CHECK(tag != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, tag, std::move(fn), state});
  return EventHandle(std::move(state));
}

EventHandle Scheduler::schedule_in(SimTime delay, const char* tag,
                                   std::function<void()> fn) {
  FMTCP_CHECK(delay >= 0);
  return schedule_at(now_ + delay, tag, std::move(fn));
}

void Scheduler::note_executed(const char* tag) {
  for (auto& [known, count] : executed_by_tag_) {
    if (known == tag) {
      ++count;
      return;
    }
  }
  executed_by_tag_.emplace_back(tag, 1);
}

std::vector<std::pair<std::string, std::uint64_t>>
Scheduler::dispatch_profile() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(executed_by_tag_.size());
  for (const auto& [tag, count] : executed_by_tag_) {
    out.emplace_back(tag, count);
  }
  return out;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, standard
    // practice for heap-of-move-only payloads.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (entry.state->cancelled) continue;
    FMTCP_DCHECK(entry.when >= now_);
    now_ = entry.when;
    entry.state->fired = true;
    ++executed_;
    note_executed(entry.tag);
    entry.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime deadline) {
  FMTCP_CHECK(deadline >= now_);
  while (!queue_.empty()) {
    if (queue_.top().state->cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    step();
  }
  now_ = deadline;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace fmtcp::sim
