// Discrete-event scheduler: the core of the ns-2 substitute.
//
// Events are (time, callback) pairs ordered by time with FIFO tie-breaking
// (insertion sequence), which makes runs fully deterministic. Cancellation
// is lazy: a cancelled event stays in the heap but its callback is skipped;
// when lazily-cancelled entries exceed half the queue the heap is compacted
// in one pass so pathological cancel/re-arm churn cannot grow it unboundedly.
//
// Hot-path design: an event only gets a cancellation control block when the
// caller actually keeps the returned handle — `schedule_*` returns a
// lightweight PendingEvent proxy, and binding it to an EventHandle is what
// materialises the control block, drawn from a per-scheduler free list.
// Fire-and-forget events (the overwhelming majority: link deliveries,
// pokes, ...) allocate nothing beyond their callback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/unique_function.h"

namespace fmtcp::sim {

class Scheduler;

/// Handle for cancelling a scheduled event. Cheap to copy; outliving the
/// scheduler is safe (cancel becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
    /// Owning scheduler, for cancellation bookkeeping; nulled when the
    /// event fires, is reaped, or the scheduler dies first.
    Scheduler* owner = nullptr;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Result of `schedule_*`: converts to an EventHandle if (and only if)
/// the caller wants one. A discarded PendingEvent costs nothing — no
/// control block is ever allocated for the event. Consume it in the same
/// statement that scheduled the event (it references the just-pushed
/// entry); it cannot be stored.
class PendingEvent {
 public:
  PendingEvent(const PendingEvent&) = delete;
  PendingEvent& operator=(const PendingEvent&) = delete;

  /// Materialises a cancellation handle for the event.
  operator EventHandle() const;  // NOLINT(google-explicit-constructor)

 private:
  friend class Scheduler;
  PendingEvent(Scheduler* scheduler, std::uint64_t seq)
      : scheduler_(scheduler), seq_(seq) {}
  Scheduler* scheduler_;
  std::uint64_t seq_;
};

/// Min-heap event queue with a monotonically advancing clock.
class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Starts at 0 and never moves backwards.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now()).
  /// `tag` labels the event for the dispatch profile; it must be a
  /// string literal (or otherwise outlive the scheduler) — profiling
  /// keys on the pointer, not the contents. Untagged events count as
  /// "event".
  PendingEvent schedule_at(SimTime when, UniqueFunction fn) {
    return schedule_at(when, kDefaultTag, std::move(fn));
  }
  PendingEvent schedule_at(SimTime when, const char* tag,
                           UniqueFunction fn);

  /// Schedules `fn` to run `delay` (>= 0) after now().
  PendingEvent schedule_in(SimTime delay, UniqueFunction fn) {
    return schedule_in(delay, kDefaultTag, std::move(fn));
  }
  PendingEvent schedule_in(SimTime delay, const char* tag,
                           UniqueFunction fn);

  /// Runs the next non-cancelled event; returns false if the queue is
  /// empty. Advances now() to the event's time before invoking it.
  bool step();

  /// Runs events until the queue is empty or now() would exceed `deadline`;
  /// leaves now() at min(deadline, last event time). Events scheduled
  /// exactly at `deadline` are executed.
  void run_until(SimTime deadline);

  /// Runs until the queue drains completely.
  void run();

  /// Number of events executed so far (diagnostics).
  std::uint64_t executed_count() const { return executed_; }

  /// Events currently queued, including lazily-cancelled ones.
  std::size_t queued_count() const { return heap_.size(); }

  /// Enables per-tag dispatch profiling. Off by default so the common
  /// no-observer run pays nothing per dispatch; harness::run_scenario
  /// turns it on when a Scenario has an observer attached.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  /// Executed-event counts per schedule tag (event-loop profiling).
  /// Empty unless set_profiling(true) was active during the run.
  std::vector<std::pair<std::string, std::uint64_t>> dispatch_profile()
      const;

  // --- Control-block pool diagnostics (tests / benches) ---

  /// Handles materialised since construction.
  std::uint64_t handles_created() const { return handles_created_; }
  /// Handle control blocks served from the free list (not allocated).
  std::uint64_t handle_states_reused() const { return states_reused_; }
  /// Lazily-cancelled entries currently in the heap.
  std::size_t cancelled_in_queue() const { return cancelled_in_queue_; }
  /// Times the heap was compacted to drop cancelled entries.
  std::uint64_t compactions() const { return compactions_; }

 private:
  friend class EventHandle;
  friend class PendingEvent;

  static constexpr const char* kDefaultTag = "event";
  /// Below this queue size compaction is never worth the pass.
  static constexpr std::size_t kCompactMinQueue = 64;

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    const char* tag;
    UniqueFunction fn;
    /// Null for the (common) fire-and-forget events nobody can cancel.
    std::shared_ptr<EventHandle::State> state;
  };

  /// True if a fires strictly before b (earlier time, then lower seq).
  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void note_executed(const char* tag);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes and returns the earliest entry; heap must be non-empty.
  Entry pop_top();
  /// Materialises (or returns the existing) control block for `seq`.
  EventHandle make_handle(std::uint64_t seq);
  std::shared_ptr<EventHandle::State> acquire_state();
  /// Returns a state to the free list if no handle still references it.
  void recycle_state(std::shared_ptr<EventHandle::State>&& state);
  /// Called via EventHandle::cancel for events still queued here.
  void note_cancelled();
  /// Drops every lazily-cancelled entry and restores the heap property.
  void compact();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool profiling_ = false;
  /// Per-tag executed counts, keyed by tag pointer (string literals);
  /// a handful of entries, scanned linearly on each profiled dispatch.
  std::vector<std::pair<const char*, std::uint64_t>> executed_by_tag_;

  /// Binary min-heap ordered by `before`.
  std::vector<Entry> heap_;
  /// Where the most recent push landed, so PendingEvent -> EventHandle
  /// conversion finds its entry in O(1) (it happens before any other
  /// heap operation; a linear scan backstops the assumption).
  std::size_t last_push_index_ = 0;

  std::vector<std::shared_ptr<EventHandle::State>> state_pool_;
  std::size_t cancelled_in_queue_ = 0;
  std::uint64_t handles_created_ = 0;
  std::uint64_t states_reused_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace fmtcp::sim
