// Discrete-event scheduler: the core of the ns-2 substitute.
//
// Events are (time, callback) pairs ordered by time with FIFO tie-breaking
// (insertion sequence), which makes runs fully deterministic. The event
// queue is a hierarchical timer wheel (Varghese/Lauck) with a calendar-
// queue base: level-0 slots span 2^26 ns (~67 ms) each, and 3 byte-wide
// levels above them cover a 2^50 ns (~13 simulated days) horizon relative
// to an internal cursor. The coarse base granularity is what makes the
// wheel fast for protocol timers: service-time and RTT/RTO-scale events
// all land directly in level 0, instead of trickling through several
// levels as they would with nanosecond slots. The rare event beyond the
// horizon goes to a small min-heap overflow. A level-0 bucket holds every
// event inside its 67 ms window; dispatch orders it by (when, seq) into a
// run queue — bucket windows are disjoint, so ordering each bucket
// locally keeps the global (when, seq) FIFO contract — and therefore
// every simulation result — identical to a binary heap.
//
// Cancellation is O(1): wheel entries are swap-removed in place via
// location back-pointers in the handle control block (bucket order never
// affects dispatch order, so swap-remove is safe); entries already in the
// current run queue or in the overflow heap are flagged and skipped.
//
// Hot-path design: an event only gets a cancellation control block when the
// caller actually keeps the returned handle — `schedule_*` returns a
// lightweight PendingEvent proxy, and binding it to an EventHandle is what
// materialises the control block, drawn from a per-scheduler free list.
// Fire-and-forget events (the overwhelming majority: link deliveries,
// pokes, ...) allocate nothing beyond their callback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/unique_function.h"

namespace fmtcp::sim {

class Scheduler;

/// Observes every scheduler operation with its causal context (the seq of
/// the event whose callback performed it, or kNoParent for operations made
/// outside dispatch). bench_sim_micro uses this to record a real cell's
/// operation trace and replay it against scheduler implementations with
/// no-op callbacks — a pure event-core throughput measurement.
class SchedulerOpRecorder {
 public:
  static constexpr std::uint64_t kNoParent = ~0ull;
  virtual ~SchedulerOpRecorder() = default;
  virtual void on_schedule(std::uint64_t parent_seq, std::uint64_t seq,
                           SimTime when, const char* tag) = 0;
  virtual void on_handle(std::uint64_t parent_seq, std::uint64_t seq) = 0;
  virtual void on_cancel(std::uint64_t parent_seq,
                         std::uint64_t target_seq) = 0;
};

/// Handle for cancelling a scheduled event. Cheap to copy; outliving the
/// scheduler is safe (cancel becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
    /// Owning scheduler, for cancellation bookkeeping; nulled when the
    /// event fires, is reaped, or the scheduler dies first.
    Scheduler* owner = nullptr;
    /// Where the queued entry currently lives (wheel bucket id, run
    /// queue, or overflow heap) and its index within a wheel bucket —
    /// maintained by the scheduler so cancel can remove it in O(1).
    std::uint32_t where = 0;
    std::uint32_t index = 0;
    /// The entry's insertion sequence (cancel reporting/diagnostics).
    std::uint64_t seq = 0;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Result of `schedule_*`: converts to an EventHandle if (and only if)
/// the caller wants one. A discarded PendingEvent costs nothing — no
/// control block is ever allocated for the event. Consume it in the same
/// statement that scheduled the event (it references the just-pushed
/// entry); it cannot be stored.
class PendingEvent {
 public:
  PendingEvent(const PendingEvent&) = delete;
  PendingEvent& operator=(const PendingEvent&) = delete;

  /// Materialises a cancellation handle for the event.
  operator EventHandle() const;  // NOLINT(google-explicit-constructor)

 private:
  friend class Scheduler;
  PendingEvent(Scheduler* scheduler, std::uint64_t seq)
      : scheduler_(scheduler), seq_(seq) {}
  Scheduler* scheduler_;
  std::uint64_t seq_;
};

/// Hierarchical timer-wheel event queue with a monotonically advancing
/// clock. Not re-entrant: callbacks must not call step()/run*() on the
/// scheduler that is dispatching them (they schedule/cancel freely).
class Scheduler {
 public:
  using handle_type = EventHandle;

  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Starts at 0 and never moves backwards.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now()).
  /// `tag` labels the event for the dispatch profile; it must be a
  /// string literal (or otherwise outlive the scheduler) — profiling
  /// keys on the pointer, not the contents. Untagged events count as
  /// "event".
  PendingEvent schedule_at(SimTime when, UniqueFunction fn) {
    return schedule_at(when, kDefaultTag, std::move(fn));
  }
  PendingEvent schedule_at(SimTime when, const char* tag,
                           UniqueFunction fn);

  /// Schedules `fn` to run `delay` (>= 0) after now().
  PendingEvent schedule_in(SimTime delay, UniqueFunction fn) {
    return schedule_in(delay, kDefaultTag, std::move(fn));
  }
  PendingEvent schedule_in(SimTime delay, const char* tag,
                           UniqueFunction fn);

  /// Runs the next non-cancelled event; returns false if the queue is
  /// empty. Advances now() to the event's time before invoking it.
  bool step();

  /// Runs events until the queue is empty or now() would exceed `deadline`;
  /// leaves now() at `deadline`. Events scheduled exactly at `deadline`
  /// are executed.
  void run_until(SimTime deadline);

  /// Runs until the queue drains completely.
  void run();

  /// Number of events executed so far (diagnostics).
  std::uint64_t executed_count() const { return executed_; }

  /// Events currently queued, including lazily-cancelled ones (entries
  /// flagged in the run queue or overflow heap but not yet reaped; a
  /// cancelled wheel entry is removed immediately and never counted).
  std::size_t queued_count() const { return size_; }

  /// Enables per-tag dispatch profiling. Off by default so the common
  /// no-observer run pays nothing per dispatch; harness::run_scenario
  /// turns it on when a Scenario has an observer attached.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  /// Attaches an operation recorder (null to detach). Recording is a
  /// diagnostic/bench facility; the null check is the only hot-path cost
  /// when detached.
  void set_op_recorder(SchedulerOpRecorder* recorder) {
    recorder_ = recorder;
  }

  /// Executed-event counts per schedule tag (event-loop profiling).
  /// Empty unless set_profiling(true) was active during the run.
  std::vector<std::pair<std::string, std::uint64_t>> dispatch_profile()
      const;

  // --- Wheel / control-block diagnostics (tests / benches) ---

  /// Handles materialised since construction.
  std::uint64_t handles_created() const { return handles_created_; }
  /// Handle control blocks served from the free list (not allocated).
  std::uint64_t handle_states_reused() const { return states_reused_; }
  /// Cancelled entries removed from wheel buckets in O(1).
  std::uint64_t cancelled_removed() const { return cancelled_removed_; }
  /// Bucket cascades (higher-level bucket redistributed downwards).
  std::uint64_t cascades() const { return cascades_; }
  /// Events that went to the far-future overflow heap on placement.
  std::uint64_t overflow_scheduled() const { return overflow_scheduled_; }

 private:
  friend class EventHandle;
  friend class PendingEvent;

  static constexpr const char* kDefaultTag = "event";

  // Level-0 slots are 2^kBaseBits ns wide (the calendar-queue grain);
  // kLevels byte-wide levels above them take the wheel to a
  // [cursor, cursor + 2^kWheelBits) ns horizon. A level-0 bucket holds
  // every pending event inside its window and is (when, seq)-sorted at
  // dispatch; windows are disjoint, so local sorting preserves the
  // global FIFO order.
  static constexpr int kBaseBits = 26;
  static constexpr int kSlotBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr int kLevels = 3;
  static constexpr int kWheelBits = kBaseBits + kSlotBits * kLevels;
  static constexpr std::size_t kBitmapWords = kSlots / 64;

  // EventHandle::State::where encoding: a wheel bucket id
  // (level * kSlots + slot) or one of the sentinels below.
  static constexpr std::uint32_t kWhereRunQueue = 0xffffffffu;
  static constexpr std::uint32_t kWhereOverflow = 0xfffffffeu;
  static constexpr std::uint32_t kWhereNone = 0xfffffffdu;

  /// Overflow compaction threshold (same policy the old heap used for
  /// its whole queue; here it only ever applies to far-future entries).
  static constexpr std::size_t kCompactMinOverflow = 64;

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    const char* tag;
    UniqueFunction fn;
    /// Null for the (common) fire-and-forget events nobody can cancel.
    std::shared_ptr<EventHandle::State> state;
  };

  /// True if a fires strictly before b (earlier time, then lower seq).
  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  static std::uint32_t where_of(int level, std::size_t slot) {
    return static_cast<std::uint32_t>(level) * kSlots +
           static_cast<std::uint32_t>(slot);
  }

  std::size_t cursor_slot(int level) const {
    return (static_cast<std::uint64_t>(cursor_) >>
            (kBaseBits + kSlotBits * level)) &
           (kSlots - 1);
  }

  /// Smallest time a bucket at (level, slot) can hold, given the cursor:
  /// every entry in it shares the cursor's bits above the level.
  std::uint64_t bucket_start(int level, std::size_t slot) const;

  /// Places an entry into the wheel (or overflow) relative to cursor_.
  /// Returns the location for the push hint.
  std::pair<std::uint32_t, std::uint32_t> place(Entry&& entry);
  /// Redistributes bucket (level, slot) to lower levels after advancing
  /// cursor_ to its start.
  void cascade(int level, std::size_t slot);
  /// Moves in-horizon overflow entries into the wheel (cursor_ already
  /// advanced to the overflow minimum).
  void refill_from_overflow();
  /// Drops lazily-cancelled entries from the overflow heap top.
  void reap_overflow_top();
  /// Earliest occupied slot >= cursor position at `level`; false if none.
  bool first_occupied(int level, std::size_t* slot) const;

  /// Advances cursor_ and loads the earliest pending window's events into
  /// the run queue (sorted by (when, seq)). Returns false when the queue
  /// is empty or the window starts beyond `deadline` (cursor_ never
  /// passes it).
  bool build_run_queue(SimTime deadline);
  /// Runs the next non-cancelled event at or before `deadline`. Events
  /// past `deadline` stay parked in the run queue for the next slice.
  bool dispatch_one(SimTime deadline);

  void note_executed(const char* tag);
  /// Materialises (or returns the existing) control block for `seq`.
  EventHandle make_handle(std::uint64_t seq);
  std::shared_ptr<EventHandle::State> acquire_state();
  /// Returns a state to the free list if no handle still references it.
  void recycle_state(std::shared_ptr<EventHandle::State>&& state);
  /// Called via EventHandle::cancel for events still queued here.
  void note_cancelled(EventHandle::State* state);
  /// Rebuilds the overflow heap without its cancelled entries.
  void compact_overflow();

  SimTime now_ = 0;
  /// Wheel reference time: now_ <= cursor_ <= every pending event (and
  /// cursor_ == now_ whenever control is outside the dispatch loop).
  /// Placement levels are computed against it.
  SimTime cursor_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  /// Live + lazily-cancelled entries across wheel, run queue, overflow.
  std::size_t size_ = 0;
  bool profiling_ = false;
  /// Per-tag executed counts, keyed by tag pointer (string literals);
  /// a handful of entries, scanned linearly on each profiled dispatch.
  std::vector<std::pair<const char*, std::uint64_t>> executed_by_tag_;

  /// wheel_[level][slot]: unordered bucket of entries; occupancy bitmaps
  /// make the next-bucket scan a few word operations per level.
  std::vector<Entry> wheel_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kBitmapWords] = {};

  /// The current window's events. Entries never move once here; the
  /// dispatch order lives in run_order_ (indices into run_queue_, sorted
  /// by (when, seq)), so ordering shuffles 4-byte indices instead of
  /// ~100-byte entries. Entries scheduled inside the window while it
  /// drains are appended here and their index splice-inserted at its
  /// ordered position past run_head_ (their seq is the largest so far,
  /// so the slot is right before the first strictly-later time). An
  /// executed entry's seq is clobbered so stale lookups cannot match it.
  std::vector<Entry> run_queue_;
  std::vector<std::uint32_t> run_order_;
  /// Position in run_order_ of the next entry to dispatch.
  std::size_t run_head_ = 0;
  /// High bits (when >> kBaseBits) of the window being drained; only
  /// meaningful while run_active_.
  std::uint64_t run_window_ = 0;
  bool run_active_ = false;

  /// Far-future events (>= 2^kWheelBits ns past the cursor): min-heap on
  /// (when, seq), lazily cancelled.
  std::vector<Entry> overflow_;
  std::size_t overflow_cancelled_ = 0;
  /// Scratch for cascades (capacity reuse).
  std::vector<Entry> cascade_scratch_;

  /// Where the most recent schedule landed, so PendingEvent ->
  /// EventHandle conversion finds its entry in O(1) (the conversion
  /// happens in the scheduling statement; a scan backstops the
  /// assumption).
  std::uint64_t last_seq_ = ~0ull;
  std::uint32_t last_where_ = kWhereNone;
  std::uint32_t last_index_ = 0;

  SchedulerOpRecorder* recorder_ = nullptr;
  /// Seq of the event whose callback is currently running (recorder
  /// context), or SchedulerOpRecorder::kNoParent outside dispatch.
  std::uint64_t current_firing_seq_ = SchedulerOpRecorder::kNoParent;

  std::vector<std::shared_ptr<EventHandle::State>> state_pool_;
  /// Control blocks whose queue entry is gone but whose handle was still
  /// alive when it left the queue (e.g. cancel removes the wheel entry
  /// while the cancelling handle exists). acquire_state() sweeps these
  /// back into the pool once the last handle drops; without the parking
  /// spot the Timer cancel/re-arm pattern would allocate every cycle.
  std::vector<std::shared_ptr<EventHandle::State>> retired_states_;
  std::uint64_t handles_created_ = 0;
  std::uint64_t states_reused_ = 0;
  std::uint64_t cancelled_removed_ = 0;
  std::uint64_t cascades_ = 0;
  std::uint64_t overflow_scheduled_ = 0;
};

}  // namespace fmtcp::sim
