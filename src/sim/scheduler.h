// Discrete-event scheduler: the core of the ns-2 substitute.
//
// Events are (time, callback) pairs ordered by time with FIFO tie-breaking
// (insertion sequence), which makes runs fully deterministic. Cancellation
// is lazy: a cancelled event stays in the heap but its callback is skipped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"

namespace fmtcp::sim {

/// Handle for cancelling a scheduled event. Cheap to copy; outliving the
/// scheduler is safe (cancel becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Min-heap event queue with a monotonically advancing clock.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Starts at 0 and never moves backwards.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now()).
  /// `tag` labels the event for the dispatch profile; it must be a
  /// string literal (or otherwise outlive the scheduler) — profiling
  /// keys on the pointer, not the contents. Untagged events count as
  /// "event".
  EventHandle schedule_at(SimTime when, std::function<void()> fn) {
    return schedule_at(when, kDefaultTag, std::move(fn));
  }
  EventHandle schedule_at(SimTime when, const char* tag,
                          std::function<void()> fn);

  /// Schedules `fn` to run `delay` (>= 0) after now().
  EventHandle schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_in(delay, kDefaultTag, std::move(fn));
  }
  EventHandle schedule_in(SimTime delay, const char* tag,
                          std::function<void()> fn);

  /// Runs the next non-cancelled event; returns false if the queue is
  /// empty. Advances now() to the event's time before invoking it.
  bool step();

  /// Runs events until the queue is empty or now() would exceed `deadline`;
  /// leaves now() at min(deadline, last event time). Events scheduled
  /// exactly at `deadline` are executed.
  void run_until(SimTime deadline);

  /// Runs until the queue drains completely.
  void run();

  /// Number of events executed so far (diagnostics).
  std::uint64_t executed_count() const { return executed_; }

  /// Events currently queued, including lazily-cancelled ones.
  std::size_t queued_count() const { return queue_.size(); }

  /// Executed-event counts per schedule tag (event-loop profiling).
  std::vector<std::pair<std::string, std::uint64_t>> dispatch_profile()
      const;

 private:
  static constexpr const char* kDefaultTag = "event";

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    const char* tag;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void note_executed(const char* tag);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  /// Per-tag executed counts, keyed by tag pointer (string literals);
  /// a handful of entries, scanned linearly on each dispatch.
  std::vector<std::pair<const char*, std::uint64_t>> executed_by_tag_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace fmtcp::sim
