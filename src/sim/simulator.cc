#include "sim/simulator.h"

namespace fmtcp::sim {

Simulator::Simulator(std::uint64_t seed) : root_rng_(seed) {}

}  // namespace fmtcp::sim
