#include "sim/timer.h"

#include <utility>

#include "common/check.h"

namespace fmtcp::sim {

Timer::Timer(Simulator& simulator, std::function<void()> on_expire)
    : simulator_(simulator), on_expire_(std::move(on_expire)) {
  FMTCP_CHECK(on_expire_ != nullptr);
}

Timer::~Timer() { cancel(); }

void Timer::schedule(SimTime delay) {
  schedule_at(simulator_.now() + delay);
}

void Timer::schedule_at(SimTime when) {
  cancel();
  expiry_ = when;
  handle_ = simulator_.schedule_at(when, "timer", [this] { fire(); });
}

void Timer::cancel() {
  handle_.cancel();
  expiry_ = kNever;
}

bool Timer::pending() const { return handle_.pending(); }

void Timer::fire() {
  expiry_ = kNever;
  on_expire_();
}

}  // namespace fmtcp::sim
