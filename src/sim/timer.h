// Restartable one-shot timer (e.g. TCP retransmission timers).
//
// A Timer owns at most one pending event. Re-scheduling cancels the
// previous expiry. Destroying the Timer cancels it, so a component's
// callback can never fire after the component is gone (RAII lifetime).
#pragma once

#include <functional>

#include "sim/simulator.h"

namespace fmtcp::sim {

class Timer {
 public:
  /// `on_expire` is invoked at expiry; it may re-schedule the timer.
  Timer(Simulator& simulator, std::function<void()> on_expire);
  ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)schedules expiry `delay` from now. Cancels any pending expiry.
  void schedule(SimTime delay);

  /// (Re)schedules expiry at absolute time `when`.
  void schedule_at(SimTime when);

  /// Cancels the pending expiry, if any. Idempotent.
  void cancel();

  /// True if an expiry is pending.
  bool pending() const;

  /// Absolute expiry time; kNever when not pending.
  SimTime expiry() const { return pending() ? expiry_ : kNever; }

 private:
  void fire();

  Simulator& simulator_;
  std::function<void()> on_expire_;
  EventHandle handle_;
  SimTime expiry_ = kNever;
};

}  // namespace fmtcp::sim
