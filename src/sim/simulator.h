// Simulator: scheduler + root RNG, the per-run context object.
//
// Every simulation component holds a Simulator& and uses it for time,
// event scheduling, and seeded randomness. One Simulator == one run.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "sim/scheduler.h"

namespace fmtcp::sim {

class Simulator {
 public:
  /// `seed` determines every random draw in the run.
  explicit Simulator(std::uint64_t seed = 1);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return scheduler_.now(); }

  EventHandle schedule_at(SimTime when, std::function<void()> fn) {
    return scheduler_.schedule_at(when, std::move(fn));
  }
  EventHandle schedule_in(SimTime delay, std::function<void()> fn) {
    return scheduler_.schedule_in(delay, std::move(fn));
  }
  /// Tagged variants label the event for the dispatch profile
  /// (`tag` must outlive the run; use a string literal).
  EventHandle schedule_at(SimTime when, const char* tag,
                          std::function<void()> fn) {
    return scheduler_.schedule_at(when, tag, std::move(fn));
  }
  EventHandle schedule_in(SimTime delay, const char* tag,
                          std::function<void()> fn) {
    return scheduler_.schedule_in(delay, tag, std::move(fn));
  }

  void run_until(SimTime deadline) { scheduler_.run_until(deadline); }
  void run() { scheduler_.run(); }
  bool step() { return scheduler_.step(); }

  Scheduler& scheduler() { return scheduler_; }

  /// Derives an independent RNG stream for a component; call once per
  /// component at construction so streams do not depend on event order.
  Rng fork_rng() { return root_rng_.fork(); }

 private:
  Scheduler scheduler_;
  Rng root_rng_;
};

}  // namespace fmtcp::sim
