// Simulator: scheduler + root RNG + per-run resource pools, the per-run
// context object.
//
// Every simulation component holds a Simulator& and uses it for time,
// event scheduling, seeded randomness, payload-buffer recycling, and
// packet uids. One Simulator == one run; nothing here is shared across
// runs, which is what makes parallel sweeps race-free by construction.
#pragma once

#include <cstdint>
#include <functional>

#include "common/buffer_pool.h"
#include "common/rng.h"
#include "sim/scheduler.h"

namespace fmtcp::sim {

class Simulator {
 public:
  /// `seed` determines every random draw in the run.
  explicit Simulator(std::uint64_t seed = 1);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return scheduler_.now(); }

  PendingEvent schedule_at(SimTime when, UniqueFunction fn) {
    return scheduler_.schedule_at(when, std::move(fn));
  }
  PendingEvent schedule_in(SimTime delay, UniqueFunction fn) {
    return scheduler_.schedule_in(delay, std::move(fn));
  }
  /// Tagged variants label the event for the dispatch profile
  /// (`tag` must outlive the run; use a string literal).
  PendingEvent schedule_at(SimTime when, const char* tag,
                           UniqueFunction fn) {
    return scheduler_.schedule_at(when, tag, std::move(fn));
  }
  PendingEvent schedule_in(SimTime delay, const char* tag,
                           UniqueFunction fn) {
    return scheduler_.schedule_in(delay, tag, std::move(fn));
  }

  void run_until(SimTime deadline) { scheduler_.run_until(deadline); }
  void run() { scheduler_.run(); }
  bool step() { return scheduler_.step(); }

  Scheduler& scheduler() { return scheduler_; }

  /// Derives an independent RNG stream for a component; call once per
  /// component at construction so streams do not depend on event order.
  Rng fork_rng() { return root_rng_.fork(); }

  /// Recycler for packet / symbol payload buffers within this run.
  BufferPool& buffer_pool() { return buffer_pool_; }

  /// Per-run packet uid stream (1, 2, 3, ...). Keeping the counter on
  /// the Simulator makes uids deterministic per cell no matter how many
  /// sweeps run concurrently (net::next_packet_uid() is the
  /// process-global fallback for code without a Simulator).
  std::uint64_t next_packet_uid() { return next_packet_uid_++; }

 private:
  Scheduler scheduler_;
  Rng root_rng_;
  BufferPool buffer_pool_;
  std::uint64_t next_packet_uid_ = 1;
};

}  // namespace fmtcp::sim
