// IETF-MPTCP receiver: connection-level reassembly by data-sequence
// number with a finite receive buffer — the mechanism behind the
// receive-buffer blocking the paper builds on (§II, [20]).
#pragma once

#include <cstdint>
#include <map>

#include "metrics/goodput.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::mptcp {

class MptcpReceiver final : public tcp::DataSink {
 public:
  /// `buffer_bytes`: connection-level receive buffer; in-order data is
  /// consumed by the application immediately, so only out-of-order bytes
  /// occupy it. `goodput` may be null.
  MptcpReceiver(sim::Simulator& simulator, std::size_t buffer_bytes,
                metrics::GoodputMeter* goodput = nullptr);

  // tcp::DataSink
  void on_segment(std::uint32_t subflow, net::Packet& p) override;
  void fill_ack(std::uint32_t subflow, const net::Packet& data,
                net::Packet& ack, std::size_t& extra_bytes) override;

  /// Next in-order data-sequence byte expected.
  std::uint64_t rcv_data_next() const { return rcv_data_next_; }

  /// Current advertised window: buffer minus out-of-order bytes held.
  std::uint32_t advertised_window() const;

  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  std::size_t out_of_order_bytes() const { return ooo_bytes_; }
  std::size_t max_out_of_order_bytes() const { return max_ooo_bytes_; }
  std::uint64_t duplicate_bytes() const { return duplicate_bytes_; }

 private:
  void insert_range(std::uint64_t start, std::uint64_t end);
  void advance_in_order();

  sim::Simulator& simulator_;
  std::size_t buffer_bytes_;
  metrics::GoodputMeter* goodput_;

  std::uint64_t rcv_data_next_ = 0;
  /// Out-of-order byte ranges [start, end), disjoint, keyed by start.
  std::map<std::uint64_t, std::uint64_t> ooo_ranges_;
  std::size_t ooo_bytes_ = 0;
  std::size_t max_ooo_bytes_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t duplicate_bytes_ = 0;
};

}  // namespace fmtcp::mptcp
