#include "mptcp/connection.h"

#include "tcp/wiring.h"

namespace fmtcp::mptcp {

MptcpConnection::MptcpConnection(sim::Simulator& simulator,
                                 net::Topology& topology,
                                 const MptcpConnectionConfig& config)
    : goodput_(config.goodput_bin) {
  if (config.use_lia) lia_group_ = std::make_unique<tcp::LiaGroup>();
  sender_ = std::make_unique<MptcpSender>(simulator, config.sender, &delays_,
                                          config.observer);
  receiver_ = std::make_unique<MptcpReceiver>(
      simulator, config.receive_buffer_bytes, &goodput_);

  tcp::WiringOptions options;
  options.subflow = config.subflow;
  options.subflow.observer = config.observer;
  options.subflow.mss_payload = config.sender.segment_bytes;
  options.receiver = config.receiver;
  options.fresh_payload_on_retransmit = false;
  options.seed_loss_hint = config.seed_loss_hint;
  if (config.use_lia) {
    options.make_cc = [this, reno = config.subflow.reno](std::uint32_t) {
      return std::make_unique<tcp::LiaCc>(*lia_group_, reno);
    };
  }

  tcp::WiredSubflows wired =
      tcp::wire_subflows(simulator, topology, *sender_, *receiver_, options);
  subflows_ = std::move(wired.subflows);
  subflow_receivers_ = std::move(wired.subflow_receivers);
  for (auto& subflow : subflows_) sender_->register_subflow(subflow.get());
}

}  // namespace fmtcp::mptcp
