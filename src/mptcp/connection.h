// IETF-MPTCP connection wiring (the paper's comparison baseline).
#pragma once

#include <memory>
#include <vector>

#include "metrics/block_stats.h"
#include "metrics/goodput.h"
#include "mptcp/receiver.h"
#include "mptcp/sender.h"
#include "net/topology.h"
#include "obs/observer.h"
#include "sim/simulator.h"
#include "tcp/congestion.h"
#include "tcp/subflow.h"

namespace fmtcp::mptcp {

struct MptcpConnectionConfig {
  MptcpSenderConfig sender;
  tcp::SubflowConfig subflow;
  /// Receiver-side subflow behaviour (delayed ACKs etc.).
  tcp::SubflowReceiverConfig receiver;
  /// Connection-level receive buffer (drives receive-window blocking).
  std::size_t receive_buffer_bytes = 128 * 1024;
  /// Couple the subflows with LIA (RFC 6356) instead of per-subflow Reno.
  bool use_lia = false;
  bool seed_loss_hint = true;
  SimTime goodput_bin = kSecond;
  /// Observability sink (not owned; null = off). Threaded into the
  /// sender and every subflow. See obs/observer.h.
  obs::Observer* observer = nullptr;
};

class MptcpConnection {
 public:
  MptcpConnection(sim::Simulator& simulator, net::Topology& topology,
                  const MptcpConnectionConfig& config);

  void start() { sender_->start(); }

  MptcpSender& sender() { return *sender_; }
  MptcpReceiver& receiver() { return *receiver_; }
  tcp::Subflow& subflow(std::size_t i) { return *subflows_.at(i); }
  std::size_t subflow_count() const { return subflows_.size(); }

  const metrics::GoodputMeter& goodput() const { return goodput_; }
  const metrics::BlockDelayRecorder& block_delays() const { return delays_; }

 private:
  metrics::GoodputMeter goodput_;
  metrics::BlockDelayRecorder delays_;
  std::unique_ptr<tcp::LiaGroup> lia_group_;
  std::unique_ptr<MptcpSender> sender_;
  std::unique_ptr<MptcpReceiver> receiver_;
  std::vector<std::unique_ptr<tcp::Subflow>> subflows_;
  std::vector<std::unique_ptr<tcp::SubflowReceiver>> subflow_receivers_;
};

}  // namespace fmtcp::mptcp
