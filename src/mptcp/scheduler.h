// MPTCP packet scheduling policies.
//
// The subflows pull data when their congestion window opens; the policy
// decides whether a pulling subflow is granted the next data-sequence
// range. kOpportunistic (grant whenever flow control allows) matches the
// era's IETF-MPTCP behaviour and is the paper's baseline; kLowestRttFirst
// and kRoundRobin are provided for ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "tcp/subflow.h"

namespace fmtcp::mptcp {

enum class SchedulerPolicy {
  kOpportunistic,
  kLowestRttFirst,
  kRoundRobin,
};

class Scheduler {
 public:
  Scheduler(SchedulerPolicy policy) : policy_(policy) {}

  /// True if `subflow` (which has window space and is asking for data)
  /// should be granted the next segment, given all subflows' state.
  bool grant(std::uint32_t subflow,
             const std::vector<tcp::Subflow*>& subflows);

  SchedulerPolicy policy() const { return policy_; }

 private:
  SchedulerPolicy policy_;
  std::uint32_t rr_next_ = 0;
};

}  // namespace fmtcp::mptcp
