#include "mptcp/receiver.h"

#include <algorithm>

#include "common/check.h"

namespace fmtcp::mptcp {

MptcpReceiver::MptcpReceiver(sim::Simulator& simulator,
                             std::size_t buffer_bytes,
                             metrics::GoodputMeter* goodput)
    : simulator_(simulator), buffer_bytes_(buffer_bytes), goodput_(goodput) {
  FMTCP_CHECK(buffer_bytes > 0);
}

std::uint32_t MptcpReceiver::advertised_window() const {
  const std::size_t free_bytes =
      buffer_bytes_ > ooo_bytes_ ? buffer_bytes_ - ooo_bytes_ : 0;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(free_bytes, UINT32_MAX));
}

void MptcpReceiver::on_segment(std::uint32_t /*subflow*/,
                               net::Packet& p) {
  if (p.data_len == 0) return;
  std::uint64_t start = p.data_seq;
  const std::uint64_t end = p.data_seq + p.data_len;
  if (end <= rcv_data_next_) {
    duplicate_bytes_ += p.data_len;
    return;
  }
  if (start < rcv_data_next_) {
    duplicate_bytes_ += rcv_data_next_ - start;
    start = rcv_data_next_;
  }
  insert_range(start, end);
  advance_in_order();
  max_ooo_bytes_ = std::max(max_ooo_bytes_, ooo_bytes_);
}

void MptcpReceiver::insert_range(std::uint64_t start, std::uint64_t end) {
  FMTCP_DCHECK(start < end);
  // Merge with any overlapping or adjacent existing ranges.
  auto it = ooo_ranges_.lower_bound(start);
  if (it != ooo_ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  while (it != ooo_ranges_.end() && it->first <= end) {
    const std::uint64_t lo = std::max(start, it->first);
    const std::uint64_t hi = std::min(end, it->second);
    if (hi > lo) duplicate_bytes_ += hi - lo;  // Overlap re-received.
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    ooo_bytes_ -= it->second - it->first;
    it = ooo_ranges_.erase(it);
  }
  ooo_ranges_[start] = end;
  ooo_bytes_ += end - start;
}

void MptcpReceiver::advance_in_order() {
  auto it = ooo_ranges_.find(rcv_data_next_);
  // The front range may also start below rcv_data_next_ after merges.
  if (it == ooo_ranges_.end() && !ooo_ranges_.empty() &&
      ooo_ranges_.begin()->first <= rcv_data_next_) {
    it = ooo_ranges_.begin();
  }
  if (it == ooo_ranges_.end() || it->first > rcv_data_next_) return;

  const std::uint64_t delivered_to = it->second;
  const std::uint64_t len = delivered_to - rcv_data_next_;
  ooo_bytes_ -= it->second - it->first;
  ooo_ranges_.erase(it);
  rcv_data_next_ = delivered_to;
  delivered_bytes_ += len;
  if (goodput_ != nullptr) {
    goodput_->on_delivered(simulator_.now(), len);
  }
}

void MptcpReceiver::fill_ack(std::uint32_t /*subflow*/,
                             const net::Packet& /*data*/, net::Packet& ack,
                             std::size_t& extra_bytes) {
  ack.data_seq = rcv_data_next_;
  ack.window = advertised_window();
  extra_bytes += 12;  // DSS data-ACK option footprint.
}

}  // namespace fmtcp::mptcp
