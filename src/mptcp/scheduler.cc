#include "mptcp/scheduler.h"

#include "common/check.h"

namespace fmtcp::mptcp {

bool Scheduler::grant(std::uint32_t subflow,
                      const std::vector<tcp::Subflow*>& subflows) {
  FMTCP_CHECK(subflow < subflows.size());
  switch (policy_) {
    case SchedulerPolicy::kOpportunistic:
      return true;

    case SchedulerPolicy::kLowestRttFirst: {
      // Grant unless another subflow with free window space has a
      // strictly lower smoothed RTT (it should be filled first; it will
      // pull on its own).
      const SimTime mine = subflows[subflow]->srtt();
      for (const tcp::Subflow* other : subflows) {
        if (other->id() == subflow) continue;
        if (other->window_space() > 0 && other->srtt() < mine) {
          return false;
        }
      }
      return true;
    }

    case SchedulerPolicy::kRoundRobin: {
      // Strict rotation among subflows that currently have window space.
      if (rr_next_ == subflow) {
        rr_next_ = (rr_next_ + 1) % subflows.size();
        return true;
      }
      // Work-conserving: if the turn-holder cannot send, pass the turn.
      if (subflows[rr_next_]->window_space() == 0) {
        rr_next_ = (subflow + 1) % subflows.size();
        return true;
      }
      return false;
    }
  }
  return true;
}

}  // namespace fmtcp::mptcp
