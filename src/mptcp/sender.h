// IETF-MPTCP sender: connection-level data-sequence space striped over
// TCP subflows, limited by the receiver's advertised window. Lost
// segments are retransmitted verbatim on their original subflow (no
// reinjection — the behaviour of the paper's IETF-MPTCP reference).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "metrics/block_stats.h"
#include "mptcp/scheduler.h"
#include "obs/observer.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::mptcp {

struct MptcpSenderConfig {
  /// Application bytes per segment (each segment carries one full MSS).
  std::size_t segment_bytes = 1280;
  /// Total application bytes to transfer; 0 = unbounded stream.
  std::uint64_t total_bytes = 0;
  /// Block size for the paper's block-granularity delay/jitter metrics
  /// (the data stream is partitioned into equal blocks, §V).
  std::size_t metric_block_bytes = 10240;
  SchedulerPolicy scheduler = SchedulerPolicy::kOpportunistic;
  /// Opportunistic reinjection (extension beyond the paper's baseline):
  /// when a subflow declares a segment lost, its data range is also
  /// offered to the other subflows, shortening head-of-line stalls at
  /// the cost of duplicate bytes. Off by default (the paper's
  /// IETF-MPTCP reference does not reinject).
  bool enable_reinjection = false;
};

class MptcpSender final : public tcp::SegmentProvider {
 public:
  /// `delays` may be null; when set, one sample is recorded per metric
  /// block when the connection-level cumulative ACK passes its end.
  /// `observer` may be null; when set, scheduler grants and
  /// reinjections land on its timeline and mptcp.* metrics.
  MptcpSender(sim::Simulator& simulator, const MptcpSenderConfig& config,
              metrics::BlockDelayRecorder* delays = nullptr,
              obs::Observer* observer = nullptr);

  void register_subflow(tcp::Subflow* subflow);
  void start();

  // --- tcp::SegmentProvider ------------------------------------------
  std::optional<tcp::SegmentContent> next_segment(
      std::uint32_t subflow) override;
  void on_segment_lost(std::uint32_t subflow, std::uint64_t seq,
                       const tcp::SegmentContent& content) override;
  void on_ack_info(std::uint32_t subflow, const net::Packet& ack) override;

  std::uint64_t data_next() const { return data_next_; }
  std::uint64_t data_acked() const { return data_acked_; }
  std::uint32_t peer_window() const { return peer_window_; }
  std::uint64_t blocks_completed() const { return blocks_completed_; }
  /// Times the flow-control window stopped a willing subflow.
  std::uint64_t window_limited_events() const { return window_limited_; }
  /// Segments re-sent on another subflow after a loss (reinjection on).
  std::uint64_t reinjections() const { return reinjections_; }

 private:
  void note_block_first_sent(std::uint64_t data_seq);
  void complete_blocks_up_to(std::uint64_t data_acked);
  /// Coalesced zero-delay re-offer of send opportunities to all subflows.
  void schedule_poke();

  sim::Simulator& simulator_;
  MptcpSenderConfig config_;
  metrics::BlockDelayRecorder* delays_;
  Scheduler scheduler_;
  std::vector<tcp::Subflow*> subflows_;

  std::uint64_t data_next_ = 0;
  std::uint64_t data_acked_ = 0;
  std::uint32_t peer_window_ = UINT32_MAX;

  /// First-transmission time of each metric block not yet completed.
  std::map<std::uint64_t, SimTime> block_first_sent_;
  std::uint64_t blocks_completed_ = 0;
  std::uint64_t window_limited_ = 0;
  std::uint64_t reinjections_ = 0;
  bool poke_pending_ = false;

  struct Reinjection {
    std::uint64_t data_seq;
    std::uint32_t data_len;
    std::uint32_t lost_on;  ///< Subflow that lost it.
  };
  /// Lost ranges awaiting reinjection on another subflow (FIFO).
  std::deque<Reinjection> reinjection_queue_;

  // Observability (no-ops when obs_ is null).
  obs::Observer* obs_ = nullptr;
  obs::Counter obs_grants_;
  obs::Counter obs_reinjections_;
  obs::Counter obs_window_limited_;
};

}  // namespace fmtcp::mptcp
