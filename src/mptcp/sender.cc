#include "mptcp/sender.h"

#include <algorithm>

#include "common/check.h"

namespace fmtcp::mptcp {

MptcpSender::MptcpSender(sim::Simulator& simulator,
                         const MptcpSenderConfig& config,
                         metrics::BlockDelayRecorder* delays,
                         obs::Observer* observer)
    : simulator_(simulator),
      config_(config),
      delays_(delays),
      scheduler_(config.scheduler),
      obs_(observer) {
  FMTCP_CHECK(config.segment_bytes > 0);
  FMTCP_CHECK(config.metric_block_bytes > 0);
  if (obs_ != nullptr) {
    obs_grants_ = obs_->metrics.counter("mptcp.scheduler_grants");
    obs_reinjections_ = obs_->metrics.counter("mptcp.reinjections");
    obs_window_limited_ =
        obs_->metrics.counter("mptcp.window_limited_events");
  }
}

void MptcpSender::register_subflow(tcp::Subflow* subflow) {
  FMTCP_CHECK(subflow != nullptr);
  FMTCP_CHECK(subflow->id() == subflows_.size());
  subflows_.push_back(subflow);
}

void MptcpSender::start() {
  for (tcp::Subflow* subflow : subflows_) {
    subflow->notify_send_opportunity();
  }
}

std::optional<tcp::SegmentContent> MptcpSender::next_segment(
    std::uint32_t subflow) {
  // Reinjections first: a lost range re-sent on a *different* subflow
  // repairs the head-of-line hole without waiting for the loser's RTO.
  while (!reinjection_queue_.empty()) {
    const Reinjection r = reinjection_queue_.front();
    if (r.data_seq + r.data_len <= data_acked_) {
      reinjection_queue_.pop_front();  // Already repaired.
      continue;
    }
    if (r.lost_on == subflow) break;  // Let another subflow take it.
    reinjection_queue_.pop_front();
    tcp::SegmentContent content;
    content.data_seq = r.data_seq;
    content.data_len = r.data_len;
    content.payload_bytes = r.data_len;
    ++reinjections_;
    obs_reinjections_.inc();
    if (obs_ != nullptr) {
      obs_->timeline.emit({obs::EventType::kReinjection, subflow,
                           simulator_.now(), r.data_seq,
                           static_cast<double>(r.lost_on), 0.0});
    }
    return content;
  }

  // Application limit.
  if (config_.total_bytes != 0 && data_next_ >= config_.total_bytes) {
    return std::nullopt;
  }
  const auto len = static_cast<std::uint32_t>(
      config_.total_bytes == 0
          ? config_.segment_bytes
          : std::min<std::uint64_t>(config_.segment_bytes,
                                    config_.total_bytes - data_next_));

  // Connection-level flow control: never exceed the advertised window
  // beyond the last data-level ACK.
  const std::uint64_t in_flight = data_next_ - data_acked_;
  if (in_flight + len > peer_window_) {
    ++window_limited_;
    obs_window_limited_.inc();
    return std::nullopt;
  }

  if (!scheduler_.grant(subflow, subflows_)) return std::nullopt;

  tcp::SegmentContent content;
  content.data_seq = data_next_;
  content.data_len = len;
  content.payload_bytes = len;
  obs_grants_.inc();
  if (obs_ != nullptr) {
    obs_->timeline.emit({obs::EventType::kSchedulerGrant, subflow,
                         simulator_.now(), data_next_,
                         static_cast<double>(len), 0.0});
  }
  note_block_first_sent(data_next_);
  data_next_ += len;
  return content;
}

void MptcpSender::note_block_first_sent(std::uint64_t data_seq) {
  if (delays_ == nullptr) return;
  const std::uint64_t block = data_seq / config_.metric_block_bytes;
  block_first_sent_.try_emplace(block, simulator_.now());
}

void MptcpSender::complete_blocks_up_to(std::uint64_t data_acked) {
  // A metric block completes when the cumulative data ACK passes its end.
  const std::uint64_t complete_blocks =
      data_acked / config_.metric_block_bytes;
  while (!block_first_sent_.empty() &&
         block_first_sent_.begin()->first < complete_blocks) {
    const auto [block, first_sent] = *block_first_sent_.begin();
    block_first_sent_.erase(block_first_sent_.begin());
    ++blocks_completed_;
    if (delays_ != nullptr) {
      delays_->record(block, simulator_.now() - first_sent);
    }
  }
}

void MptcpSender::on_segment_lost(std::uint32_t subflow,
                                  std::uint64_t /*seq*/,
                                  const tcp::SegmentContent& content) {
  if (!config_.enable_reinjection || content.data_len == 0) return;
  if (content.data_seq + content.data_len <= data_acked_) return;
  // Dedup: skip if an identical range is already queued.
  for (const Reinjection& r : reinjection_queue_) {
    if (r.data_seq == content.data_seq) return;
  }
  reinjection_queue_.push_back(
      {content.data_seq, content.data_len, subflow});
  schedule_poke();
}

void MptcpSender::on_ack_info(std::uint32_t /*subflow*/,
                              const net::Packet& ack) {
  peer_window_ = ack.window;
  if (ack.data_seq > data_acked_) {
    data_acked_ = ack.data_seq;
    complete_blocks_up_to(data_acked_);
  }
  // A window update or data-level ACK may unblock the other subflows;
  // poke them via a coalesced zero-delay event (poking inline would let
  // them pull before this ACK's subflow-level bookkeeping completes).
  schedule_poke();
}

void MptcpSender::schedule_poke() {
  if (poke_pending_) return;
  poke_pending_ = true;
  simulator_.schedule_in(0, "poke", [this] {
    poke_pending_ = false;
    for (tcp::Subflow* subflow : subflows_) {
      subflow->notify_send_opportunity();
    }
  });
}

}  // namespace fmtcp::mptcp
