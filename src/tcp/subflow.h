// TCP subflow engine shared by IETF-MPTCP and FMTCP.
//
// A Subflow provides per-path TCP semantics at packet (segment)
// granularity: sequence numbers, cumulative ACKs with duplicate-ACK fast
// retransmit (NewReno-style recovery), retransmission timeout with
// exponential backoff and go-back-N resend, congestion control, RTT
// estimation, and a loss-rate estimate.
//
// The one behavioural switch between the two protocols lives here
// (`fresh_payload_on_retransmit`): IETF-MPTCP retransmits the stored
// original segment; FMTCP keeps identical congestion-control dynamics but
// fills the retransmission slot with *fresh fountain symbols* requested
// from the allocator — the paper's core mechanism (§I, §III-B).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "obs/observer.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "tcp/congestion.h"
#include "tcp/rtt_estimator.h"

namespace fmtcp::tcp {

/// Payload of one segment, protocol-agnostic: FMTCP fills `symbols`,
/// MPTCP fills the data-sequence mapping.
struct SegmentContent {
  std::vector<net::EncodedSymbol> symbols;
  std::uint64_t data_seq = 0;
  std::uint32_t data_len = 0;
  /// Wire payload bytes (excluding the kHeaderBytes header).
  std::size_t payload_bytes = 0;
  /// Absolute arrival time the provider predicted when it filled this
  /// segment (0 = no prediction). Opaque to the subflow; echoed back in
  /// on_segment_acked so providers can score their EAT estimates.
  SimTime predicted_arrival = 0;
};

/// Upper-layer interface a Subflow pulls segments from and reports
/// delivery events to. One provider typically serves all subflows of a
/// connection (it is the connection's scheduler/allocator).
class SegmentProvider {
 public:
  virtual ~SegmentProvider() = default;

  /// Returns content for a brand-new segment on `subflow`, or nullopt if
  /// the upper layer has nothing to send right now (flow control, no app
  /// data, all blocks complete, ...).
  virtual std::optional<SegmentContent> next_segment(std::uint32_t subflow) = 0;

  /// Returns *fresh* content for the retransmission slot of `seq`
  /// (FMTCP mode only). Returning nullopt sends a header-only filler so
  /// the cumulative ACK can still advance.
  virtual std::optional<SegmentContent> retransmit_segment(
      std::uint32_t subflow, std::uint64_t seq) {
    (void)subflow;
    (void)seq;
    return std::nullopt;
  }

  /// The cumulative ACK advanced over `seq`; `content` is what the
  /// segment carried (latest transmission).
  virtual void on_segment_acked(std::uint32_t subflow, std::uint64_t seq,
                                const SegmentContent& content) {
    (void)subflow;
    (void)seq;
    (void)content;
  }

  /// A transmission of `seq` carrying `content` was declared lost (fast
  /// retransmit or timeout). May be spurious, as in real TCP.
  virtual void on_segment_lost(std::uint32_t subflow, std::uint64_t seq,
                               const SegmentContent& content) {
    (void)subflow;
    (void)seq;
    (void)content;
  }

  /// An ACK packet arrived on `subflow`; piggybacked upper-layer fields
  /// (FMTCP block ACKs, MPTCP data ACK / window) are in `ack`. Called
  /// before the subflow pulls new segments, so fresh feedback informs
  /// allocation.
  virtual void on_ack_info(std::uint32_t subflow, const net::Packet& ack) {
    (void)subflow;
    (void)ack;
  }
};

/// Which controller a Subflow builds when none is injected.
enum class CongestionAlgo { kReno, kCubic };

struct SubflowConfig {
  std::uint32_t id = 0;
  /// Connection tag stamped on every outgoing packet; lets several
  /// connections share a Link (the receiver echoes it on ACKs).
  std::uint32_t flow_tag = 0;
  /// Maximum payload bytes per segment (MSS_f of Eq. 9).
  std::size_t mss_payload = 1280;
  /// FMTCP mode: retransmissions carry fresh allocator content.
  bool fresh_payload_on_retransmit = false;
  int dupack_threshold = 3;
  /// Selective acknowledgements (RFC 2018/6675-style, simplified):
  /// receivers always advertise SACK ranges; when enabled the sender
  /// keeps a scoreboard, excludes SACKed segments from the pipe, infers
  /// losses from SACK counts instead of duplicate ACKs, and skips SACKed
  /// segments during go-back-N. Off by default (the paper's era baseline
  /// and this repo's calibrated operating point).
  bool enable_sack = false;
  /// EWMA weight of the loss estimator (statistic loss probability p_f).
  double loss_ewma_alpha = 0.01;
  RttConfig rtt;
  CongestionAlgo congestion = CongestionAlgo::kReno;
  RenoConfig reno;    ///< Used when congestion == kReno.
  CubicConfig cubic;  ///< Used when congestion == kCubic.
  /// Optional observability sink (not owned): cwnd-change / RTO /
  /// fast-retransmit timeline events plus tcp.* counters. Null = off.
  obs::Observer* observer = nullptr;
};

/// Sender-side subflow endpoint. Attach `on_ack_packet` as the reverse
/// link's sink and hand it the forward link at construction.
class Subflow {
 public:
  /// `cc` may be null, in which case a RenoCc is created from
  /// `config.reno`.
  Subflow(sim::Simulator& simulator, const SubflowConfig& config,
          net::Link& out, SegmentProvider& provider,
          std::unique_ptr<CongestionControl> cc = nullptr);

  /// Processes an arriving ACK; then pulls new segments while the window
  /// allows.
  void on_ack_packet(net::Packet ack);

  /// The upper layer produced new data; pulls segments while possible.
  void notify_send_opportunity();

  // --- Introspection (data-allocation inputs, Eq. 10–11, and tests) ---

  std::uint32_t id() const { return config_.id; }
  std::size_t mss_payload() const { return config_.mss_payload; }

  double cwnd() const { return cc_->cwnd(); }
  CongestionControl& congestion() { return *cc_; }

  /// Segments in flight (snd_next - snd_una).
  std::uint64_t in_flight() const { return snd_next_ - snd_una_; }

  /// w_f: remaining congestion window space in segments.
  std::uint64_t window_space() const;

  SimTime srtt() const;
  SimTime rto() const { return rtt_.rto(); }
  const RttEstimator& rtt_estimator() const { return rtt_; }

  /// p_f: smoothed loss-rate estimate.
  double loss_estimate() const { return loss_est_; }

  /// Seeds the loss estimate (a sender that knows the statistic loss
  /// probability, as the paper assumes, may set it).
  void set_loss_hint(double p);

  /// tau_f: time since the first (oldest) unacknowledged segment was
  /// last sent; 0 when nothing is outstanding.
  SimTime time_since_first_unacked() const;

  /// Expected response time RT_f = (1-p)RTT + p·RTO (Eq. 10).
  SimTime expected_rt() const;

  /// Expected delivery time EDT_f ≈ r/2 + p/(1-p)·RTO (the SEDT shape of
  /// Eq. 13, which §IV-B says EDT estimation should mirror).
  SimTime expected_edt() const;

  /// Expected arriving time EAT_f (Eq. 11).
  SimTime expected_arrival_time() const;

  // --- Counters ---
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t fast_retransmits() const { return fast_retransmits_; }
  std::uint64_t snd_next() const { return snd_next_; }
  std::uint64_t snd_una() const { return snd_una_; }
  /// Segments currently SACKed above snd_una (0 unless enable_sack).
  std::size_t sacked_count() const { return sacked_.size(); }

 private:
  struct Outstanding {
    SegmentContent content;
    SimTime first_sent = 0;
    SimTime last_sent = 0;
    bool retransmitted = false;
    /// Already resent once by the SACK hole pass (avoid duplicates until
    /// a timeout resets the recovery).
    bool sack_retransmitted = false;
  };

  /// Emits a cwnd-change timeline event when the window moved at least
  /// one segment since the last emission (or unconditionally on loss
  /// events, `force`), keeping the timeline proportional to the window
  /// trajectory rather than to the ACK rate.
  void note_cwnd(bool force);

  void try_send();
  void send_new_segment(SegmentContent content);
  void retransmit(std::uint64_t seq);
  /// Builds the wire packet for `content`. In fresh-payload mode the
  /// symbol payload rows are MOVED into the packet (the stored content
  /// keeps coefficient metadata only, which is all loss accounting
  /// needs); stored-payload mode (IETF-MPTCP) copies, as its
  /// retransmissions resend the stored segment.
  net::Packet build_packet(std::uint64_t seq, SegmentContent& content);
  void on_rto();
  void note_acked_for_loss_est();
  void note_lost_for_loss_est();
  void arm_timer_if_needed();
  void absorb_sack_ranges(const net::Packet& ack);
  /// Retransmits SACK-inferred holes; true if any segment was resent.
  bool sack_retransmit_holes();

  sim::Simulator& simulator_;
  SubflowConfig config_;
  net::Link& out_;
  SegmentProvider& provider_;
  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;
  sim::Timer rto_timer_;

  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_next_ = 0;
  std::map<std::uint64_t, Outstanding> outstanding_;

  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_seq_ = 0;

  bool gbn_active_ = false;
  std::uint64_t gbn_next_ = 0;
  std::uint64_t gbn_limit_ = 0;

  /// SACK scoreboard: sequences in (snd_una, snd_next) the receiver
  /// holds out of order.
  std::set<std::uint64_t> sacked_;

  double loss_est_ = 0.0;

  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  bool in_try_send_ = false;

  // Observability (all no-ops when config.observer is null).
  obs::Observer* obs_ = nullptr;
  double last_emitted_cwnd_ = -1.0;
  obs::Counter obs_segments_;
  obs::Counter obs_retransmissions_;
  obs::Counter obs_rtos_;
  obs::Counter obs_fast_retransmits_;
  obs::Histogram obs_rtt_ms_;
};

/// Receiver-side upper layer: consumes arriving segments and fills
/// protocol-specific ACK fields.
class DataSink {
 public:
  virtual ~DataSink() = default;

  /// Every arriving data segment (in order or not, duplicate seq or not)
  /// is delivered; content-level dedup is the upper layer's job (MPTCP
  /// reassembly by data_seq; FMTCP symbol rank check). The sink may MOVE
  /// the symbol payload bytes out of `p` (the decoder takes ownership of
  /// rows it keeps), but must leave all metadata — including the symbol
  /// block ids — intact: the subflow still builds the ACK from them.
  virtual void on_segment(std::uint32_t subflow, net::Packet& p) = 0;

  /// Piggybacks upper-layer fields (block ACKs, data ACK, window) onto
  /// the subflow-level ACK about to be sent for `data`. `extra_bytes`
  /// should be incremented by the wire size of added options.
  virtual void fill_ack(std::uint32_t subflow, const net::Packet& data,
                        net::Packet& ack, std::size_t& extra_bytes) {
    (void)subflow;
    (void)data;
    (void)ack;
    (void)extra_bytes;
  }
};

struct SubflowReceiverConfig {
  /// RFC 1122-style delayed ACKs: in-order segments are acknowledged
  /// every `ack_every` packets or after `delack_timeout`, whichever
  /// comes first; anything out of order (or filling a hole) is
  /// acknowledged immediately. Off by default — the paper-era ns-2
  /// agents ACK every packet, and so do this repo's calibrated runs.
  bool delayed_acks = false;
  int ack_every = 2;
  SimTime delack_timeout = from_ms(40);
};

/// Receiver-side subflow endpoint: tracks rcv_next, delivers every
/// arriving segment to the sink, and ACKs data packets on the reverse
/// link (every packet, or delayed per the config).
class SubflowReceiver {
 public:
  SubflowReceiver(sim::Simulator& simulator, std::uint32_t id,
                  net::Link& ack_out, DataSink& sink,
                  const SubflowReceiverConfig& config = {});

  /// Attach as the forward link's sink.
  void on_data_packet(net::Packet p);

  std::uint64_t rcv_next() const { return rcv_next_; }
  std::uint64_t segments_received() const { return segments_received_; }
  std::uint64_t duplicate_segments() const { return duplicates_; }
  std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  void send_ack(const net::Packet& data);
  void on_delack_timer();

  sim::Simulator& simulator_;
  std::uint32_t id_;
  net::Link& ack_out_;
  DataSink& sink_;
  SubflowReceiverConfig config_;
  sim::Timer delack_timer_;
  /// Data packet awaiting a (delayed) ACK; empty kind==kAck when none.
  net::Packet pending_ack_for_;
  bool ack_pending_ = false;
  int unacked_in_order_ = 0;
  std::uint64_t rcv_next_ = 0;
  std::set<std::uint64_t> out_of_order_;
  std::uint64_t segments_received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t acks_sent_ = 0;
};

}  // namespace fmtcp::tcp
