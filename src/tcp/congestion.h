// Congestion control for subflows.
//
// The paper (§III-A) notes its framework works with any of the surveyed
// controllers and that on disjoint paths the choice does not influence the
// results; both protocols here run Reno per subflow by default. A coupled
// LIA controller (RFC 6356, the "MPTCP" controller of [14]) is provided as
// an extension for shared-bottleneck scenarios.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/time.h"

namespace fmtcp::tcp {

/// Congestion window state machine; the window is in packets (fractional
/// internally for additive increase).
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Current congestion window in packets (>= 1).
  virtual double cwnd() const = 0;

  /// Slow-start threshold in packets.
  virtual double ssthresh() const = 0;

  /// `newly_acked` in-order segments were acknowledged.
  virtual void on_ack(std::uint64_t newly_acked) = 0;

  /// Loss detected via triple duplicate ACK (fast retransmit).
  virtual void on_fast_retransmit() = 0;

  /// Retransmission timeout fired.
  virtual void on_timeout() = 0;

  virtual bool in_slow_start() const { return cwnd() < ssthresh(); }
};

struct RenoConfig {
  double initial_cwnd = 2.0;
  /// Moderate initial threshold (ns-2-style): without SACK, letting the
  /// initial slow start run to queue overflow causes a burst-loss
  /// collapse that NewReno needs one RTT per hole to repair.
  double initial_ssthresh = 64.0;
  double max_cwnd = 10000.0;
};

/// TCP Reno: slow start, additive increase, halve on fast retransmit,
/// collapse to one segment on timeout.
class RenoCc final : public CongestionControl {
 public:
  explicit RenoCc(const RenoConfig& config = {});

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  void on_ack(std::uint64_t newly_acked) override;
  void on_fast_retransmit() override;
  void on_timeout() override;

 private:
  RenoConfig config_;
  double cwnd_;
  double ssthresh_;
};

struct CubicConfig {
  double initial_cwnd = 2.0;
  double initial_ssthresh = 64.0;
  double max_cwnd = 10000.0;
  /// CUBIC's C constant (window units per second cubed).
  double c = 0.4;
  /// Multiplicative decrease factor (RFC 8312's β_cubic = 0.7).
  double beta = 0.7;
};

/// CUBIC (RFC 8312, simplified: no TCP-friendly region, no fast
/// convergence) — the window grows as W(t) = C(t-K)^3 + W_max between
/// loss events, plateauing near the last loss point before probing.
/// Provided as an extension beyond the paper's Reno-era controllers.
class CubicCc final : public CongestionControl {
 public:
  /// `now` supplies the simulation clock (CUBIC growth is time-based,
  /// not ACK-counted).
  CubicCc(std::function<SimTime()> now, const CubicConfig& config = {});

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  void on_ack(std::uint64_t newly_acked) override;
  void on_fast_retransmit() override;
  void on_timeout() override;

  double w_max() const { return w_max_; }

 private:
  /// Current cubic target window.
  double target_window() const;
  void start_epoch();

  std::function<SimTime()> now_;
  CubicConfig config_;
  double cwnd_;
  double ssthresh_;
  double w_max_;
  double k_seconds_ = 0.0;  ///< Time to return to W_max after a loss.
  SimTime epoch_start_;
};

class LiaCc;

/// Shared state for one MPTCP connection's coupled subflows. The group
/// computes the RFC 6356 aggressiveness factor `alpha` from every member's
/// window and RTT.
class LiaGroup {
 public:
  /// Registers a member; called by LiaCc's constructor.
  void add_member(LiaCc* member);
  void remove_member(LiaCc* member);

  /// alpha = cwnd_total * max_i(w_i/rtt_i^2) / (sum_i w_i/rtt_i)^2.
  double alpha() const;

  double total_cwnd() const;

 private:
  std::vector<LiaCc*> members_;
};

/// One subflow of a Linked-Increases (RFC 6356) coupled controller.
/// Decrease behaviour is Reno's; increase is capped by the coupled alpha.
class LiaCc final : public CongestionControl {
 public:
  LiaCc(LiaGroup& group, const RenoConfig& config = {});
  ~LiaCc() override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  void on_ack(std::uint64_t newly_acked) override;
  void on_fast_retransmit() override;
  void on_timeout() override;

  /// The subflow feeds its smoothed RTT here so the group can compute
  /// alpha; defaults to 100 ms until the first report.
  void set_rtt(SimTime srtt);
  SimTime rtt() const { return srtt_; }

 private:
  LiaGroup& group_;
  RenoConfig config_;
  double cwnd_;
  double ssthresh_;
  SimTime srtt_ = from_ms(100);
};

}  // namespace fmtcp::tcp
