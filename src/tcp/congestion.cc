#include "tcp/congestion.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fmtcp::tcp {

RenoCc::RenoCc(const RenoConfig& config)
    : config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh) {
  FMTCP_CHECK(config.initial_cwnd >= 1.0);
}

void RenoCc::on_ack(std::uint64_t newly_acked) {
  for (std::uint64_t i = 0; i < newly_acked; ++i) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // Slow start: one segment per ACKed segment.
    } else {
      cwnd_ += 1.0 / cwnd_;  // Congestion avoidance.
    }
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd);
}

void RenoCc::on_fast_retransmit() {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = ssthresh_;
}

void RenoCc::on_timeout() {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
}

CubicCc::CubicCc(std::function<SimTime()> now, const CubicConfig& config)
    : now_(std::move(now)),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      w_max_(config.initial_cwnd) {
  FMTCP_CHECK(now_ != nullptr);
  FMTCP_CHECK(config.beta > 0.0 && config.beta < 1.0);
  FMTCP_CHECK(config.c > 0.0);
  start_epoch();
}

void CubicCc::start_epoch() {
  epoch_start_ = now_();
  // K = cbrt(W_max (1 - beta) / C): time until the cubic curve returns
  // to W_max from the post-loss window.
  k_seconds_ = std::cbrt(w_max_ * (1.0 - config_.beta) / config_.c);
}

double CubicCc::target_window() const {
  const double t = to_seconds(now_() - epoch_start_);
  const double dt = t - k_seconds_;
  return config_.c * dt * dt * dt + w_max_;
}

void CubicCc::on_ack(std::uint64_t newly_acked) {
  for (std::uint64_t i = 0; i < newly_acked; ++i) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // Standard slow start.
      continue;
    }
    const double target = target_window();
    if (target > cwnd_) {
      // Approach the cubic target: the classic per-ACK increment.
      cwnd_ += (target - cwnd_) / cwnd_;
    } else {
      cwnd_ += 0.01 / cwnd_;  // Minimal probing in the plateau.
    }
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd);
}

void CubicCc::on_fast_retransmit() {
  w_max_ = cwnd_;
  cwnd_ = std::max(cwnd_ * config_.beta, 2.0);
  ssthresh_ = cwnd_;
  start_epoch();
}

void CubicCc::on_timeout() {
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * config_.beta, 2.0);
  cwnd_ = 1.0;
  start_epoch();
}

void LiaGroup::add_member(LiaCc* member) { members_.push_back(member); }

void LiaGroup::remove_member(LiaCc* member) {
  std::erase(members_, member);
}

double LiaGroup::total_cwnd() const {
  double total = 0.0;
  for (const LiaCc* m : members_) total += m->cwnd();
  return total;
}

double LiaGroup::alpha() const {
  // RFC 6356 formula with RTTs in seconds.
  double best = 0.0;
  double denom = 0.0;
  for (const LiaCc* m : members_) {
    const double rtt = std::max(1e-6, to_seconds(m->rtt()));
    best = std::max(best, m->cwnd() / (rtt * rtt));
    denom += m->cwnd() / rtt;
  }
  if (denom <= 0.0) return 1.0;
  return total_cwnd() * best / (denom * denom);
}

LiaCc::LiaCc(LiaGroup& group, const RenoConfig& config)
    : group_(group),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh) {
  group_.add_member(this);
}

LiaCc::~LiaCc() { group_.remove_member(this); }

void LiaCc::on_ack(std::uint64_t newly_acked) {
  for (std::uint64_t i = 0; i < newly_acked; ++i) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;
    } else {
      const double coupled = group_.alpha() / group_.total_cwnd();
      const double uncoupled = 1.0 / cwnd_;
      cwnd_ += std::min(coupled, uncoupled);
    }
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd);
}

void LiaCc::on_fast_retransmit() {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = ssthresh_;
}

void LiaCc::on_timeout() {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
}

void LiaCc::set_rtt(SimTime srtt) {
  if (srtt > 0) srtt_ = srtt;
}

}  // namespace fmtcp::tcp
