// RFC 6298 round-trip-time estimation and retransmission timeout.
#pragma once

#include "common/time.h"

namespace fmtcp::tcp {

struct RttConfig {
  SimTime min_rto = from_ms(200);  ///< Lower RTO clamp (ns-2-style 200 ms).
  SimTime max_rto = 60 * kSecond;  ///< Upper RTO clamp.
  SimTime initial_rto = kSecond;   ///< RTO before the first sample.
  SimTime clock_granularity = from_ms(1);  ///< G in RFC 6298.
};

/// Keeps SRTT/RTTVAR per RFC 6298 and derives the RTO, including
/// exponential backoff on timeouts.
class RttEstimator {
 public:
  explicit RttEstimator(const RttConfig& config = {});

  /// Feeds one RTT measurement; resets any timeout backoff.
  void add_sample(SimTime rtt);

  /// Doubles the RTO (called on retransmission timeout).
  void backoff();

  /// Current retransmission timeout (clamped, with backoff applied).
  SimTime rto() const;

  /// Smoothed RTT; 0 before the first sample.
  SimTime srtt() const { return has_sample_ ? srtt_ : 0; }

  /// RTT variation; 0 before the first sample.
  SimTime rttvar() const { return has_sample_ ? rttvar_ : 0; }

  bool has_sample() const { return has_sample_; }

  const RttConfig& config() const { return config_; }

 private:
  RttConfig config_;
  bool has_sample_ = false;
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  SimTime base_rto_;
  int backoff_shift_ = 0;
};

}  // namespace fmtcp::tcp
