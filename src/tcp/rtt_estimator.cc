#include "tcp/rtt_estimator.h"

#include <algorithm>

#include "common/check.h"

namespace fmtcp::tcp {

RttEstimator::RttEstimator(const RttConfig& config)
    : config_(config), base_rto_(config.initial_rto) {
  FMTCP_CHECK(config_.min_rto > 0);
  FMTCP_CHECK(config_.max_rto >= config_.min_rto);
}

void RttEstimator::add_sample(SimTime rtt) {
  FMTCP_CHECK(rtt >= 0);
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    const SimTime err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  base_rto_ = srtt_ + std::max(config_.clock_granularity, 4 * rttvar_);
  backoff_shift_ = 0;
}

void RttEstimator::backoff() {
  if (backoff_shift_ < 16) ++backoff_shift_;
}

SimTime RttEstimator::rto() const {
  SimTime rto = base_rto_;
  for (int i = 0; i < backoff_shift_ && rto < config_.max_rto; ++i) {
    rto *= 2;
  }
  return std::clamp(rto, config_.min_rto, config_.max_rto);
}

}  // namespace fmtcp::tcp
