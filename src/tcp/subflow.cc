#include "tcp/subflow.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace fmtcp::tcp {

namespace {
constexpr const char* kModule = "subflow";
/// Wire bytes charged per block-ACK entry piggybacked on an ACK.
constexpr std::size_t kBlockAckBytes = 8;
}  // namespace

namespace {

std::unique_ptr<CongestionControl> make_default_cc(
    sim::Simulator& simulator, const SubflowConfig& config) {
  if (config.congestion == CongestionAlgo::kCubic) {
    return std::make_unique<CubicCc>(
        [&simulator] { return simulator.now(); }, config.cubic);
  }
  return std::make_unique<RenoCc>(config.reno);
}

}  // namespace

Subflow::Subflow(sim::Simulator& simulator, const SubflowConfig& config,
                 net::Link& out, SegmentProvider& provider,
                 std::unique_ptr<CongestionControl> cc)
    : simulator_(simulator),
      config_(config),
      out_(out),
      provider_(provider),
      cc_(cc ? std::move(cc) : make_default_cc(simulator, config)),
      rtt_(config.rtt),
      rto_timer_(simulator, [this] { on_rto(); }),
      obs_(config.observer) {
  FMTCP_CHECK(config_.mss_payload > 0);
  if (obs_ != nullptr) {
    obs_segments_ = obs_->metrics.counter("tcp.segments_sent");
    obs_retransmissions_ = obs_->metrics.counter("tcp.retransmissions");
    obs_rtos_ = obs_->metrics.counter("tcp.rto_fires");
    obs_fast_retransmits_ = obs_->metrics.counter("tcp.fast_retransmits");
    obs_rtt_ms_ = obs_->metrics.histogram(
        "tcp.rtt_ms",
        {50, 100, 150, 200, 250, 300, 400, 600, 800, 1200, 1600, 3200});
    note_cwnd(/*force=*/true);  // Record the initial window.
  }
}

void Subflow::note_cwnd(bool force) {
  if (obs_ == nullptr) return;
  const double cwnd = cc_->cwnd();
  if (!force && std::abs(cwnd - last_emitted_cwnd_) < 1.0) return;
  last_emitted_cwnd_ = cwnd;
  obs_->timeline.emit({obs::EventType::kCwndChange, config_.id,
                       simulator_.now(), 0, cwnd, cc_->ssthresh()});
}

std::uint64_t Subflow::window_space() const {
  const auto inflation =
      in_recovery_ ? static_cast<std::uint64_t>(dup_acks_) : 0;
  const auto window = static_cast<std::uint64_t>(cc_->cwnd()) + inflation;
  // SACKed segments have left the network: exclude them from the pipe.
  std::uint64_t flight = in_flight();
  flight -= std::min<std::uint64_t>(flight, sacked_.size());
  return window > flight ? window - flight : 0;
}

SimTime Subflow::srtt() const {
  // Before the first sample, fall back to the configured initial RTO as a
  // conservative RTT surrogate so EDT/EAT stay meaningful at startup.
  return rtt_.has_sample() ? rtt_.srtt() : rtt_.config().initial_rto;
}

void Subflow::set_loss_hint(double p) {
  FMTCP_CHECK(p >= 0.0 && p < 1.0);
  loss_est_ = p;
}

SimTime Subflow::time_since_first_unacked() const {
  const auto it = outstanding_.find(snd_una_);
  if (it == outstanding_.end()) return 0;
  return simulator_.now() - it->second.last_sent;
}

SimTime Subflow::expected_rt() const {
  const double p = std::min(loss_est_, 0.99);
  return static_cast<SimTime>((1.0 - p) * static_cast<double>(srtt()) +
                              p * static_cast<double>(rto()));
}

SimTime Subflow::expected_edt() const {
  const double p = std::min(loss_est_, 0.99);
  const double expected_retx =
      p / (1.0 - p) * static_cast<double>(rto());
  return static_cast<SimTime>(static_cast<double>(srtt()) / 2.0 +
                              expected_retx);
}

SimTime Subflow::expected_arrival_time() const {
  const SimTime edt = expected_edt();
  if (window_space() > 0) return edt;
  const SimTime eat = edt + expected_rt() - time_since_first_unacked();
  return std::max(edt, eat);
}

void Subflow::note_acked_for_loss_est() {
  loss_est_ *= (1.0 - config_.loss_ewma_alpha);
}

void Subflow::note_lost_for_loss_est() {
  loss_est_ =
      loss_est_ * (1.0 - config_.loss_ewma_alpha) + config_.loss_ewma_alpha;
}

void Subflow::on_ack_packet(net::Packet ack) {
  FMTCP_CHECK(ack.kind == net::PacketKind::kAck);

  // Upper-layer feedback first (block ACKs / data ACK / window) so the
  // provider sees fresh state before we pull segments below.
  provider_.on_ack_info(config_.id, ack);

  if (ack.echo_sent_at > 0) {
    const SimTime sample = simulator_.now() - ack.echo_sent_at;
    rtt_.add_sample(sample);
    obs_rtt_ms_.observe(to_ms(sample));
    if (auto* lia = dynamic_cast<LiaCc*>(cc_.get())) {
      lia->set_rtt(rtt_.srtt());
    }
  }

  if (config_.enable_sack) absorb_sack_ranges(ack);

  if (ack.ack_next > snd_una_) {
    const std::uint64_t newly = ack.ack_next - snd_una_;
    for (std::uint64_t seq = snd_una_; seq < ack.ack_next; ++seq) {
      auto it = outstanding_.find(seq);
      if (it != outstanding_.end()) {
        provider_.on_segment_acked(config_.id, seq, it->second.content);
        outstanding_.erase(it);
      }
      note_acked_for_loss_est();
    }
    snd_una_ = ack.ack_next;
    sacked_.erase(sacked_.begin(), sacked_.lower_bound(snd_una_));

    if (in_recovery_) {
      if (snd_una_ >= recover_seq_) {
        in_recovery_ = false;
        dup_acks_ = 0;
      } else {
        // NewReno partial ACK: retransmit the next hole, stay in
        // recovery, no further window reduction. (With SACK the
        // scoreboard pass below picks the holes instead.)
        dup_acks_ = 0;
        if (!config_.enable_sack && outstanding_.count(snd_una_) != 0) {
          retransmit(snd_una_);
        }
      }
    } else {
      dup_acks_ = 0;
      cc_->on_ack(newly);
      note_cwnd(/*force=*/false);
    }

    if (gbn_active_) {
      gbn_next_ = std::max(gbn_next_, snd_una_);
      if (snd_una_ >= gbn_limit_) gbn_active_ = false;
    }

    if (outstanding_.empty()) {
      rto_timer_.cancel();
    } else {
      rto_timer_.schedule(rto());
    }
  } else if (ack.ack_next == snd_una_ && !outstanding_.empty() &&
             !config_.enable_sack) {
    ++dup_acks_;
    if (dup_acks_ == config_.dupack_threshold && !in_recovery_) {
      in_recovery_ = true;
      recover_seq_ = snd_next_;
      cc_->on_fast_retransmit();
      ++fast_retransmits_;
      obs_fast_retransmits_.inc();
      if (obs_ != nullptr) {
        obs_->timeline.emit({obs::EventType::kFastRetransmit, config_.id,
                             simulator_.now(), snd_una_, cc_->cwnd(),
                             cc_->ssthresh()});
      }
      note_cwnd(/*force=*/true);
      FMTCP_LOG(LogLevel::kDebug, simulator_.now(), kModule,
                "sf%u fast retransmit seq=%llu cwnd=%.1f", config_.id,
                static_cast<unsigned long long>(snd_una_), cc_->cwnd());
      if (outstanding_.count(snd_una_) != 0) retransmit(snd_una_);
    }
  }

  if (config_.enable_sack) sack_retransmit_holes();

  try_send();
}

void Subflow::notify_send_opportunity() { try_send(); }

void Subflow::try_send() {
  if (in_try_send_) return;  // Guard against provider-triggered re-entry.
  in_try_send_ = true;

  // Go-back-N resend after a timeout takes priority over new data, as in
  // classic TCP: everything past snd_una is resent as the window reopens.
  // Segments the SACK scoreboard knows arrived are skipped.
  while (gbn_active_ && window_space() > 0) {
    auto it = outstanding_.lower_bound(gbn_next_);
    while (it != outstanding_.end() && it->first < gbn_limit_ &&
           sacked_.count(it->first) != 0) {
      ++it;
    }
    if (it == outstanding_.end() || it->first >= gbn_limit_) {
      gbn_active_ = false;
      break;
    }
    const std::uint64_t seq = it->first;
    retransmit(seq);
    gbn_next_ = seq + 1;
  }

  while (window_space() > 0) {
    std::optional<SegmentContent> content =
        provider_.next_segment(config_.id);
    if (!content.has_value()) break;
    send_new_segment(std::move(*content));
  }

  in_try_send_ = false;
}

net::Packet Subflow::build_packet(std::uint64_t seq,
                                  SegmentContent& content) {
  net::Packet p;
  p.kind = net::PacketKind::kData;
  p.subflow = config_.id;
  p.flow_tag = config_.flow_tag;
  p.seq = seq;
  p.data_seq = content.data_seq;
  p.data_len = content.data_len;
  if (config_.fresh_payload_on_retransmit) {
    // Coded protocols never resend stored payload bytes, so the symbol
    // rows travel by move; only coefficient metadata stays behind for
    // ACK/loss accounting.
    p.symbols.reserve(content.symbols.size());
    for (net::EncodedSymbol& symbol : content.symbols) {
      p.symbols.push_back({symbol.block, symbol.block_symbols,
                           symbol.coeff_seed, symbol.systematic_index,
                           std::move(symbol.data)});
      symbol.data.clear();
    }
  } else {
    p.symbols = content.symbols;
  }
  net::finalize_size(p, content.payload_bytes);
  p.sent_at = simulator_.now();
  p.uid = simulator_.next_packet_uid();
  return p;
}

void Subflow::send_new_segment(SegmentContent content) {
  const std::uint64_t seq = snd_next_++;
  net::Packet p = build_packet(seq, content);
  Outstanding out;
  out.content = std::move(content);
  out.first_sent = simulator_.now();
  out.last_sent = simulator_.now();
  outstanding_.emplace(seq, std::move(out));
  ++segments_sent_;
  obs_segments_.inc();
  out_.send(std::move(p));
  arm_timer_if_needed();
}

void Subflow::arm_timer_if_needed() {
  if (!rto_timer_.pending()) rto_timer_.schedule(rto());
}

void Subflow::retransmit(std::uint64_t seq) {
  auto it = outstanding_.find(seq);
  FMTCP_CHECK(it != outstanding_.end());

  // The previous transmission of this segment is considered lost.
  provider_.on_segment_lost(config_.id, seq, it->second.content);
  note_lost_for_loss_est();

  if (config_.fresh_payload_on_retransmit) {
    // FMTCP: fill the slot with new symbols chosen by the allocator. A
    // header-only filler keeps the sequence space advancing when every
    // block is already complete.
    std::optional<SegmentContent> fresh =
        provider_.retransmit_segment(config_.id, seq);
    it->second.content = fresh.has_value() ? std::move(*fresh)
                                           : SegmentContent{};
  }

  net::Packet p = build_packet(seq, it->second.content);
  it->second.last_sent = simulator_.now();
  it->second.retransmitted = true;
  ++retransmissions_;
  obs_retransmissions_.inc();
  out_.send(std::move(p));
  rto_timer_.schedule(rto());
}

void Subflow::absorb_sack_ranges(const net::Packet& ack) {
  for (const auto& [start, end] : ack.sack_ranges) {
    const std::uint64_t lo = std::max(start, snd_una_ + 1);
    const std::uint64_t hi = std::min(end, snd_next_);
    for (std::uint64_t seq = lo; seq < hi; ++seq) {
      sacked_.insert(seq);
    }
  }
}

bool Subflow::sack_retransmit_holes() {
  if (sacked_.empty()) return false;
  const std::uint64_t highest_sacked = *sacked_.rbegin();
  bool resent = false;

  // Walk unsacked outstanding segments below the highest SACK; a segment
  // with >= dupack_threshold SACKed segments above it is deemed lost
  // (simplified RFC 6675 rule).
  auto sack_it = sacked_.begin();
  std::size_t sacked_at_or_below = 0;
  for (auto it = outstanding_.begin();
       it != outstanding_.end() && it->first < highest_sacked; ++it) {
    const std::uint64_t seq = it->first;
    if (sacked_.count(seq) != 0) continue;
    while (sack_it != sacked_.end() && *sack_it <= seq) {
      ++sack_it;
      ++sacked_at_or_below;
    }
    const std::size_t sacked_above = sacked_.size() - sacked_at_or_below;
    if (sacked_above < static_cast<std::size_t>(config_.dupack_threshold)) {
      break;  // Later segments have even fewer SACKs above them.
    }
    if (it->second.sack_retransmitted) continue;

    if (!in_recovery_) {
      in_recovery_ = true;
      recover_seq_ = snd_next_;
      cc_->on_fast_retransmit();
      ++fast_retransmits_;
      obs_fast_retransmits_.inc();
      if (obs_ != nullptr) {
        obs_->timeline.emit({obs::EventType::kFastRetransmit, config_.id,
                             simulator_.now(), seq, cc_->cwnd(),
                             cc_->ssthresh()});
      }
      note_cwnd(/*force=*/true);
    }
    if (!resent || window_space() > 0) {
      it->second.sack_retransmitted = true;
      retransmit(seq);
      resent = true;
    }
  }
  return resent;
}

void Subflow::on_rto() {
  if (outstanding_.empty()) return;
  ++timeouts_;
  obs_rtos_.inc();
  FMTCP_LOG(LogLevel::kDebug, simulator_.now(), kModule,
            "sf%u RTO seq=%llu rto=%.3fs", config_.id,
            static_cast<unsigned long long>(snd_una_),
            to_seconds(rto()));
  cc_->on_timeout();
  if (obs_ != nullptr) {
    obs_->timeline.emit({obs::EventType::kRtoFired, config_.id,
                         simulator_.now(), snd_una_, to_seconds(rto()),
                         cc_->cwnd()});
  }
  note_cwnd(/*force=*/true);
  rtt_.backoff();
  in_recovery_ = false;
  dup_acks_ = 0;
  gbn_active_ = true;
  gbn_limit_ = snd_next_;
  gbn_next_ = snd_una_ + 1;
  // A timeout starts a fresh recovery epoch: the SACK pass may resend.
  for (auto& [seq, outstanding] : outstanding_) {
    outstanding.sack_retransmitted = false;
  }
  retransmit(snd_una_);
  try_send();
}

SubflowReceiver::SubflowReceiver(sim::Simulator& simulator, std::uint32_t id,
                                 net::Link& ack_out, DataSink& sink,
                                 const SubflowReceiverConfig& config)
    : simulator_(simulator),
      id_(id),
      ack_out_(ack_out),
      sink_(sink),
      config_(config),
      delack_timer_(simulator, [this] { on_delack_timer(); }) {}

void SubflowReceiver::on_data_packet(net::Packet p) {
  FMTCP_CHECK(p.kind == net::PacketKind::kData);
  FMTCP_CHECK(p.subflow == id_);
  ++segments_received_;

  const bool duplicate =
      p.seq < rcv_next_ || out_of_order_.count(p.seq) != 0;
  bool in_order = false;
  if (duplicate) {
    ++duplicates_;
  } else if (p.seq == rcv_next_) {
    in_order = true;
    ++rcv_next_;
    while (out_of_order_.erase(rcv_next_) != 0) {
      ++rcv_next_;
      in_order = false;  // Filled a hole: ACK immediately.
    }
  } else {
    out_of_order_.insert(p.seq);
  }

  // Content is consumed on arrival regardless of subflow-level order:
  // FMTCP symbols are order-free, MPTCP reassembles by data_seq. The
  // sink may take the payload bytes; the metadata we ACK from remains.
  sink_.on_segment(id_, p);

  if (config_.delayed_acks && in_order && !duplicate) {
    ++unacked_in_order_;
    if (unacked_in_order_ < config_.ack_every) {
      pending_ack_for_ = std::move(p);
      ack_pending_ = true;
      if (!delack_timer_.pending()) {
        delack_timer_.schedule(config_.delack_timeout);
      }
      return;
    }
  }
  send_ack(p);
}

void SubflowReceiver::on_delack_timer() {
  if (!ack_pending_) return;
  send_ack(pending_ack_for_);
}

void SubflowReceiver::send_ack(const net::Packet& p) {
  ack_pending_ = false;
  unacked_in_order_ = 0;
  delack_timer_.cancel();

  net::Packet ack;
  ack.kind = net::PacketKind::kAck;
  ack.subflow = id_;
  ack.flow_tag = p.flow_tag;  // Echo the connection tag.
  ack.ack_next = rcv_next_;
  ack.echo_sent_at = p.sent_at;
  ack.sent_at = simulator_.now();
  ack.uid = simulator_.next_packet_uid();

  // Advertise up to four SACK ranges over the out-of-order segments
  // (senders without SACK enabled simply ignore them).
  for (auto it = out_of_order_.begin();
       it != out_of_order_.end() && ack.sack_ranges.size() < 4;) {
    const std::uint64_t start = *it;
    std::uint64_t end = start + 1;
    ++it;
    while (it != out_of_order_.end() && *it == end) {
      ++end;
      ++it;
    }
    ack.sack_ranges.emplace_back(start, end);
  }

  std::size_t extra = 0;
  sink_.fill_ack(id_, p, ack, extra);
  extra += ack.block_acks.size() * kBlockAckBytes;
  extra += ack.sack_ranges.size() * 16;  // Two 8-byte edges per range.
  net::finalize_size(ack, extra);
  ++acks_sent_;
  ack_out_.send(std::move(ack));
}

}  // namespace fmtcp::tcp
