#include "tcp/wiring.h"

namespace fmtcp::tcp {

WiredSubflows wire_subflows(sim::Simulator& simulator,
                            net::Topology& topology,
                            SegmentProvider& provider, DataSink& sink,
                            const WiringOptions& options) {
  WiredSubflows wired;
  for (std::size_t i = 0; i < topology.path_count(); ++i) {
    net::Path& path = topology.path(i);

    SubflowConfig config = options.subflow;
    config.id = static_cast<std::uint32_t>(i);
    config.fresh_payload_on_retransmit =
        options.fresh_payload_on_retransmit;

    std::unique_ptr<CongestionControl> cc;
    if (options.make_cc) cc = options.make_cc(config.id);

    auto subflow = std::make_unique<Subflow>(
        simulator, config, path.forward(), provider, std::move(cc));
    if (options.seed_loss_hint) {
      subflow->set_loss_hint(path.config().loss_rate);
    }

    auto subflow_receiver = std::make_unique<SubflowReceiver>(
        simulator, config.id, path.reverse(), sink, options.receiver);

    path.forward().set_sink(
        [receiver = subflow_receiver.get()](net::Packet p) {
          receiver->on_data_packet(std::move(p));
        });
    path.reverse().set_sink([sf = subflow.get()](net::Packet p) {
      sf->on_ack_packet(std::move(p));
    });

    wired.subflows.push_back(std::move(subflow));
    wired.subflow_receivers.push_back(std::move(subflow_receiver));
  }
  return wired;
}

}  // namespace fmtcp::tcp
