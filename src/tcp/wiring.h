// Shared wiring: attaches one Subflow/SubflowReceiver pair per path of a
// Topology to a SegmentProvider/DataSink pair. Used by every protocol's
// connection class.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/topology.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::tcp {

struct WiredSubflows {
  std::vector<std::unique_ptr<Subflow>> subflows;
  std::vector<std::unique_ptr<SubflowReceiver>> subflow_receivers;
};

struct WiringOptions {
  /// Template; `id` and `fresh_payload_on_retransmit` are overridden.
  SubflowConfig subflow;
  /// Receiver-side behaviour (delayed ACKs etc.).
  SubflowReceiverConfig receiver;
  bool fresh_payload_on_retransmit = false;
  /// Seed each subflow's loss estimate from the path's configured rate.
  bool seed_loss_hint = true;
  /// Optional per-subflow congestion-control factory (null = Reno).
  std::function<std::unique_ptr<CongestionControl>(std::uint32_t)>
      make_cc;
};

/// Builds and connects subflows for every path; the caller registers the
/// returned subflows with its sender.
WiredSubflows wire_subflows(sim::Simulator& simulator,
                            net::Topology& topology,
                            SegmentProvider& provider, DataSink& sink,
                            const WiringOptions& options);

}  // namespace fmtcp::tcp
