file(REMOVE_RECURSE
  "CMakeFiles/fountain_codec_demo.dir/fountain_codec_demo.cc.o"
  "CMakeFiles/fountain_codec_demo.dir/fountain_codec_demo.cc.o.d"
  "fountain_codec_demo"
  "fountain_codec_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fountain_codec_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
