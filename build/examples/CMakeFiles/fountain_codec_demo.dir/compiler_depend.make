# Empty compiler generated dependencies file for fountain_codec_demo.
# This may be replaced when dependencies are built.
