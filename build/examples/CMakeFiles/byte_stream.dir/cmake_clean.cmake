file(REMOVE_RECURSE
  "CMakeFiles/byte_stream.dir/byte_stream.cc.o"
  "CMakeFiles/byte_stream.dir/byte_stream.cc.o.d"
  "byte_stream"
  "byte_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byte_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
