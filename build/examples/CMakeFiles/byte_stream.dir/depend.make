# Empty dependencies file for byte_stream.
# This may be replaced when dependencies are built.
