file(REMOVE_RECURSE
  "CMakeFiles/wifi_lte_surge.dir/wifi_lte_surge.cc.o"
  "CMakeFiles/wifi_lte_surge.dir/wifi_lte_surge.cc.o.d"
  "wifi_lte_surge"
  "wifi_lte_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_lte_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
