# Empty dependencies file for wifi_lte_surge.
# This may be replaced when dependencies are built.
