# Empty compiler generated dependencies file for wifi_lte_surge.
# This may be replaced when dependencies are built.
