# Empty dependencies file for fmtcp_tcp.
# This may be replaced when dependencies are built.
