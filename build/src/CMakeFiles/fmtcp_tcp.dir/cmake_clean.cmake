file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_tcp.dir/tcp/congestion.cc.o"
  "CMakeFiles/fmtcp_tcp.dir/tcp/congestion.cc.o.d"
  "CMakeFiles/fmtcp_tcp.dir/tcp/rtt_estimator.cc.o"
  "CMakeFiles/fmtcp_tcp.dir/tcp/rtt_estimator.cc.o.d"
  "CMakeFiles/fmtcp_tcp.dir/tcp/subflow.cc.o"
  "CMakeFiles/fmtcp_tcp.dir/tcp/subflow.cc.o.d"
  "CMakeFiles/fmtcp_tcp.dir/tcp/wiring.cc.o"
  "CMakeFiles/fmtcp_tcp.dir/tcp/wiring.cc.o.d"
  "libfmtcp_tcp.a"
  "libfmtcp_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
