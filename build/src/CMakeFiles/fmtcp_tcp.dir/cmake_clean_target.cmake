file(REMOVE_RECURSE
  "libfmtcp_tcp.a"
)
