
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/congestion.cc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/congestion.cc.o" "gcc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/congestion.cc.o.d"
  "/root/repo/src/tcp/rtt_estimator.cc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/rtt_estimator.cc.o" "gcc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/rtt_estimator.cc.o.d"
  "/root/repo/src/tcp/subflow.cc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/subflow.cc.o" "gcc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/subflow.cc.o.d"
  "/root/repo/src/tcp/wiring.cc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/wiring.cc.o" "gcc" "src/CMakeFiles/fmtcp_tcp.dir/tcp/wiring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
