# Empty dependencies file for fmtcp_harness.
# This may be replaced when dependencies are built.
