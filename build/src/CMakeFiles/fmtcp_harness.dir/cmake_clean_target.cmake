file(REMOVE_RECURSE
  "libfmtcp_harness.a"
)
