file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_harness.dir/harness/fairness.cc.o"
  "CMakeFiles/fmtcp_harness.dir/harness/fairness.cc.o.d"
  "CMakeFiles/fmtcp_harness.dir/harness/printer.cc.o"
  "CMakeFiles/fmtcp_harness.dir/harness/printer.cc.o.d"
  "CMakeFiles/fmtcp_harness.dir/harness/runner.cc.o"
  "CMakeFiles/fmtcp_harness.dir/harness/runner.cc.o.d"
  "CMakeFiles/fmtcp_harness.dir/harness/scenario.cc.o"
  "CMakeFiles/fmtcp_harness.dir/harness/scenario.cc.o.d"
  "CMakeFiles/fmtcp_harness.dir/harness/sweep.cc.o"
  "CMakeFiles/fmtcp_harness.dir/harness/sweep.cc.o.d"
  "CMakeFiles/fmtcp_harness.dir/harness/table1.cc.o"
  "CMakeFiles/fmtcp_harness.dir/harness/table1.cc.o.d"
  "libfmtcp_harness.a"
  "libfmtcp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
