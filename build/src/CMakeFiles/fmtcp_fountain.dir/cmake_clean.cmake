file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_fountain.dir/fountain/block.cc.o"
  "CMakeFiles/fmtcp_fountain.dir/fountain/block.cc.o.d"
  "CMakeFiles/fmtcp_fountain.dir/fountain/decoder.cc.o"
  "CMakeFiles/fmtcp_fountain.dir/fountain/decoder.cc.o.d"
  "CMakeFiles/fmtcp_fountain.dir/fountain/gf2.cc.o"
  "CMakeFiles/fmtcp_fountain.dir/fountain/gf2.cc.o.d"
  "CMakeFiles/fmtcp_fountain.dir/fountain/lt_codec.cc.o"
  "CMakeFiles/fmtcp_fountain.dir/fountain/lt_codec.cc.o.d"
  "CMakeFiles/fmtcp_fountain.dir/fountain/random_linear.cc.o"
  "CMakeFiles/fmtcp_fountain.dir/fountain/random_linear.cc.o.d"
  "CMakeFiles/fmtcp_fountain.dir/fountain/soliton.cc.o"
  "CMakeFiles/fmtcp_fountain.dir/fountain/soliton.cc.o.d"
  "libfmtcp_fountain.a"
  "libfmtcp_fountain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_fountain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
