file(REMOVE_RECURSE
  "libfmtcp_fountain.a"
)
