# Empty compiler generated dependencies file for fmtcp_fountain.
# This may be replaced when dependencies are built.
