
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fountain/block.cc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/block.cc.o" "gcc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/block.cc.o.d"
  "/root/repo/src/fountain/decoder.cc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/decoder.cc.o" "gcc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/decoder.cc.o.d"
  "/root/repo/src/fountain/gf2.cc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/gf2.cc.o" "gcc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/gf2.cc.o.d"
  "/root/repo/src/fountain/lt_codec.cc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/lt_codec.cc.o" "gcc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/lt_codec.cc.o.d"
  "/root/repo/src/fountain/random_linear.cc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/random_linear.cc.o" "gcc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/random_linear.cc.o.d"
  "/root/repo/src/fountain/soliton.cc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/soliton.cc.o" "gcc" "src/CMakeFiles/fmtcp_fountain.dir/fountain/soliton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
