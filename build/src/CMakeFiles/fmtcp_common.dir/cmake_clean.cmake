file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_common.dir/common/flags.cc.o"
  "CMakeFiles/fmtcp_common.dir/common/flags.cc.o.d"
  "CMakeFiles/fmtcp_common.dir/common/logging.cc.o"
  "CMakeFiles/fmtcp_common.dir/common/logging.cc.o.d"
  "CMakeFiles/fmtcp_common.dir/common/rng.cc.o"
  "CMakeFiles/fmtcp_common.dir/common/rng.cc.o.d"
  "CMakeFiles/fmtcp_common.dir/common/stats.cc.o"
  "CMakeFiles/fmtcp_common.dir/common/stats.cc.o.d"
  "CMakeFiles/fmtcp_common.dir/common/timeseries.cc.o"
  "CMakeFiles/fmtcp_common.dir/common/timeseries.cc.o.d"
  "libfmtcp_common.a"
  "libfmtcp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
