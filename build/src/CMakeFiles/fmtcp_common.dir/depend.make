# Empty dependencies file for fmtcp_common.
# This may be replaced when dependencies are built.
