file(REMOVE_RECURSE
  "libfmtcp_common.a"
)
