file(REMOVE_RECURSE
  "libfmtcp_sim.a"
)
