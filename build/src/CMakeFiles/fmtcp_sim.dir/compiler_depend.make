# Empty compiler generated dependencies file for fmtcp_sim.
# This may be replaced when dependencies are built.
