file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_sim.dir/sim/scheduler.cc.o"
  "CMakeFiles/fmtcp_sim.dir/sim/scheduler.cc.o.d"
  "CMakeFiles/fmtcp_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/fmtcp_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/fmtcp_sim.dir/sim/timer.cc.o"
  "CMakeFiles/fmtcp_sim.dir/sim/timer.cc.o.d"
  "libfmtcp_sim.a"
  "libfmtcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
