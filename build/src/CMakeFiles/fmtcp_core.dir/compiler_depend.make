# Empty compiler generated dependencies file for fmtcp_core.
# This may be replaced when dependencies are built.
