file(REMOVE_RECURSE
  "libfmtcp_core.a"
)
