file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_core.dir/core/allocator.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/allocator.cc.o.d"
  "CMakeFiles/fmtcp_core.dir/core/block_manager.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/block_manager.cc.o.d"
  "CMakeFiles/fmtcp_core.dir/core/connection.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/connection.cc.o.d"
  "CMakeFiles/fmtcp_core.dir/core/eat.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/eat.cc.o.d"
  "CMakeFiles/fmtcp_core.dir/core/params.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/params.cc.o.d"
  "CMakeFiles/fmtcp_core.dir/core/receiver.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/receiver.cc.o.d"
  "CMakeFiles/fmtcp_core.dir/core/sender.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/sender.cc.o.d"
  "CMakeFiles/fmtcp_core.dir/core/stream.cc.o"
  "CMakeFiles/fmtcp_core.dir/core/stream.cc.o.d"
  "libfmtcp_core.a"
  "libfmtcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
