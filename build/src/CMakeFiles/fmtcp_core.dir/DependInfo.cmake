
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cc" "src/CMakeFiles/fmtcp_core.dir/core/allocator.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/allocator.cc.o.d"
  "/root/repo/src/core/block_manager.cc" "src/CMakeFiles/fmtcp_core.dir/core/block_manager.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/block_manager.cc.o.d"
  "/root/repo/src/core/connection.cc" "src/CMakeFiles/fmtcp_core.dir/core/connection.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/connection.cc.o.d"
  "/root/repo/src/core/eat.cc" "src/CMakeFiles/fmtcp_core.dir/core/eat.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/eat.cc.o.d"
  "/root/repo/src/core/params.cc" "src/CMakeFiles/fmtcp_core.dir/core/params.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/params.cc.o.d"
  "/root/repo/src/core/receiver.cc" "src/CMakeFiles/fmtcp_core.dir/core/receiver.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/receiver.cc.o.d"
  "/root/repo/src/core/sender.cc" "src/CMakeFiles/fmtcp_core.dir/core/sender.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/sender.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/CMakeFiles/fmtcp_core.dir/core/stream.cc.o" "gcc" "src/CMakeFiles/fmtcp_core.dir/core/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_fountain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
