
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mptcp/connection.cc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/connection.cc.o" "gcc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/connection.cc.o.d"
  "/root/repo/src/mptcp/receiver.cc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/receiver.cc.o" "gcc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/receiver.cc.o.d"
  "/root/repo/src/mptcp/scheduler.cc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/scheduler.cc.o" "gcc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/scheduler.cc.o.d"
  "/root/repo/src/mptcp/sender.cc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/sender.cc.o" "gcc" "src/CMakeFiles/fmtcp_mptcp.dir/mptcp/sender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
