file(REMOVE_RECURSE
  "libfmtcp_mptcp.a"
)
