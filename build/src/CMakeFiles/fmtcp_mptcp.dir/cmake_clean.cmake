file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/connection.cc.o"
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/connection.cc.o.d"
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/receiver.cc.o"
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/receiver.cc.o.d"
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/scheduler.cc.o"
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/scheduler.cc.o.d"
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/sender.cc.o"
  "CMakeFiles/fmtcp_mptcp.dir/mptcp/sender.cc.o.d"
  "libfmtcp_mptcp.a"
  "libfmtcp_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
