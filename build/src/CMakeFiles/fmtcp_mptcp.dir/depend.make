# Empty dependencies file for fmtcp_mptcp.
# This may be replaced when dependencies are built.
