file(REMOVE_RECURSE
  "libfmtcp_analysis.a"
)
