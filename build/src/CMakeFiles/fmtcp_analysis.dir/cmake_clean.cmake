file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_analysis.dir/analysis/allocation_analysis.cc.o"
  "CMakeFiles/fmtcp_analysis.dir/analysis/allocation_analysis.cc.o.d"
  "CMakeFiles/fmtcp_analysis.dir/analysis/coding_analysis.cc.o"
  "CMakeFiles/fmtcp_analysis.dir/analysis/coding_analysis.cc.o.d"
  "libfmtcp_analysis.a"
  "libfmtcp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
