# Empty dependencies file for fmtcp_analysis.
# This may be replaced when dependencies are built.
