file(REMOVE_RECURSE
  "libfmtcp_baselines.a"
)
