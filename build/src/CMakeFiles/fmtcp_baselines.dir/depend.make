# Empty dependencies file for fmtcp_baselines.
# This may be replaced when dependencies are built.
