file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_baselines.dir/baselines/fixed_rate.cc.o"
  "CMakeFiles/fmtcp_baselines.dir/baselines/fixed_rate.cc.o.d"
  "CMakeFiles/fmtcp_baselines.dir/baselines/hmtp.cc.o"
  "CMakeFiles/fmtcp_baselines.dir/baselines/hmtp.cc.o.d"
  "libfmtcp_baselines.a"
  "libfmtcp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
