file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_metrics.dir/metrics/block_stats.cc.o"
  "CMakeFiles/fmtcp_metrics.dir/metrics/block_stats.cc.o.d"
  "CMakeFiles/fmtcp_metrics.dir/metrics/goodput.cc.o"
  "CMakeFiles/fmtcp_metrics.dir/metrics/goodput.cc.o.d"
  "libfmtcp_metrics.a"
  "libfmtcp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
