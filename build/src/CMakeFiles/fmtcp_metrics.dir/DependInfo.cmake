
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/block_stats.cc" "src/CMakeFiles/fmtcp_metrics.dir/metrics/block_stats.cc.o" "gcc" "src/CMakeFiles/fmtcp_metrics.dir/metrics/block_stats.cc.o.d"
  "/root/repo/src/metrics/goodput.cc" "src/CMakeFiles/fmtcp_metrics.dir/metrics/goodput.cc.o" "gcc" "src/CMakeFiles/fmtcp_metrics.dir/metrics/goodput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
