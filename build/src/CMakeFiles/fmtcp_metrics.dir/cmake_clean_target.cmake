file(REMOVE_RECURSE
  "libfmtcp_metrics.a"
)
