# Empty dependencies file for fmtcp_metrics.
# This may be replaced when dependencies are built.
