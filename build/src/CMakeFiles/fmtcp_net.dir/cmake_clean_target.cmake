file(REMOVE_RECURSE
  "libfmtcp_net.a"
)
