file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_net.dir/net/link.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/link.cc.o.d"
  "CMakeFiles/fmtcp_net.dir/net/loss_model.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/loss_model.cc.o.d"
  "CMakeFiles/fmtcp_net.dir/net/packet.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/packet.cc.o.d"
  "CMakeFiles/fmtcp_net.dir/net/path.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/path.cc.o.d"
  "CMakeFiles/fmtcp_net.dir/net/queue.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/queue.cc.o.d"
  "CMakeFiles/fmtcp_net.dir/net/topology.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/topology.cc.o.d"
  "CMakeFiles/fmtcp_net.dir/net/trace.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/trace.cc.o.d"
  "CMakeFiles/fmtcp_net.dir/net/trace_summary.cc.o"
  "CMakeFiles/fmtcp_net.dir/net/trace_summary.cc.o.d"
  "libfmtcp_net.a"
  "libfmtcp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
