# Empty dependencies file for fmtcp_net.
# This may be replaced when dependencies are built.
