
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link.cc" "src/CMakeFiles/fmtcp_net.dir/net/link.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/link.cc.o.d"
  "/root/repo/src/net/loss_model.cc" "src/CMakeFiles/fmtcp_net.dir/net/loss_model.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/loss_model.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/fmtcp_net.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/packet.cc.o.d"
  "/root/repo/src/net/path.cc" "src/CMakeFiles/fmtcp_net.dir/net/path.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/path.cc.o.d"
  "/root/repo/src/net/queue.cc" "src/CMakeFiles/fmtcp_net.dir/net/queue.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/queue.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/fmtcp_net.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/topology.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/CMakeFiles/fmtcp_net.dir/net/trace.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/trace.cc.o.d"
  "/root/repo/src/net/trace_summary.cc" "src/CMakeFiles/fmtcp_net.dir/net/trace_summary.cc.o" "gcc" "src/CMakeFiles/fmtcp_net.dir/net/trace_summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
