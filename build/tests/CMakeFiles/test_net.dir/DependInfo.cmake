
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/jitter_test.cc" "tests/CMakeFiles/test_net.dir/net/jitter_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/jitter_test.cc.o.d"
  "/root/repo/tests/net/link_test.cc" "tests/CMakeFiles/test_net.dir/net/link_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/link_test.cc.o.d"
  "/root/repo/tests/net/loss_model_test.cc" "tests/CMakeFiles/test_net.dir/net/loss_model_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/loss_model_test.cc.o.d"
  "/root/repo/tests/net/packet_test.cc" "tests/CMakeFiles/test_net.dir/net/packet_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/packet_test.cc.o.d"
  "/root/repo/tests/net/queue_test.cc" "tests/CMakeFiles/test_net.dir/net/queue_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/queue_test.cc.o.d"
  "/root/repo/tests/net/red_queue_test.cc" "tests/CMakeFiles/test_net.dir/net/red_queue_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/red_queue_test.cc.o.d"
  "/root/repo/tests/net/topology_test.cc" "tests/CMakeFiles/test_net.dir/net/topology_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/topology_test.cc.o.d"
  "/root/repo/tests/net/trace_summary_test.cc" "tests/CMakeFiles/test_net.dir/net/trace_summary_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/trace_summary_test.cc.o.d"
  "/root/repo/tests/net/trace_test.cc" "tests/CMakeFiles/test_net.dir/net/trace_test.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_fountain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
