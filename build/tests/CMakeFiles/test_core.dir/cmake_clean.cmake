file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/allocator_test.cc.o"
  "CMakeFiles/test_core.dir/core/allocator_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/block_manager_test.cc.o"
  "CMakeFiles/test_core.dir/core/block_manager_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/eat_test.cc.o"
  "CMakeFiles/test_core.dir/core/eat_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/fmtcp_integration_test.cc.o"
  "CMakeFiles/test_core.dir/core/fmtcp_integration_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/params_test.cc.o"
  "CMakeFiles/test_core.dir/core/params_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/receiver_test.cc.o"
  "CMakeFiles/test_core.dir/core/receiver_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/stream_test.cc.o"
  "CMakeFiles/test_core.dir/core/stream_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
