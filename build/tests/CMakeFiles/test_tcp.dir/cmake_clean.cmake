file(REMOVE_RECURSE
  "CMakeFiles/test_tcp.dir/tcp/congestion_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/congestion_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/cubic_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/cubic_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/delayed_ack_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/delayed_ack_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/rtt_estimator_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/rtt_estimator_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/sack_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/sack_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/subflow_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/subflow_test.cc.o.d"
  "CMakeFiles/test_tcp.dir/tcp/wiring_test.cc.o"
  "CMakeFiles/test_tcp.dir/tcp/wiring_test.cc.o.d"
  "test_tcp"
  "test_tcp.pdb"
  "test_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
