file(REMOVE_RECURSE
  "CMakeFiles/test_mptcp.dir/mptcp/mptcp_integration_test.cc.o"
  "CMakeFiles/test_mptcp.dir/mptcp/mptcp_integration_test.cc.o.d"
  "CMakeFiles/test_mptcp.dir/mptcp/receiver_test.cc.o"
  "CMakeFiles/test_mptcp.dir/mptcp/receiver_test.cc.o.d"
  "CMakeFiles/test_mptcp.dir/mptcp/reinjection_test.cc.o"
  "CMakeFiles/test_mptcp.dir/mptcp/reinjection_test.cc.o.d"
  "CMakeFiles/test_mptcp.dir/mptcp/scheduler_test.cc.o"
  "CMakeFiles/test_mptcp.dir/mptcp/scheduler_test.cc.o.d"
  "test_mptcp"
  "test_mptcp.pdb"
  "test_mptcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
