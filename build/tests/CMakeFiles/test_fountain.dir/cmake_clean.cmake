file(REMOVE_RECURSE
  "CMakeFiles/test_fountain.dir/fountain/block_test.cc.o"
  "CMakeFiles/test_fountain.dir/fountain/block_test.cc.o.d"
  "CMakeFiles/test_fountain.dir/fountain/decoder_test.cc.o"
  "CMakeFiles/test_fountain.dir/fountain/decoder_test.cc.o.d"
  "CMakeFiles/test_fountain.dir/fountain/gf2_test.cc.o"
  "CMakeFiles/test_fountain.dir/fountain/gf2_test.cc.o.d"
  "CMakeFiles/test_fountain.dir/fountain/lt_codec_test.cc.o"
  "CMakeFiles/test_fountain.dir/fountain/lt_codec_test.cc.o.d"
  "CMakeFiles/test_fountain.dir/fountain/random_linear_test.cc.o"
  "CMakeFiles/test_fountain.dir/fountain/random_linear_test.cc.o.d"
  "CMakeFiles/test_fountain.dir/fountain/soliton_test.cc.o"
  "CMakeFiles/test_fountain.dir/fountain/soliton_test.cc.o.d"
  "CMakeFiles/test_fountain.dir/fountain/systematic_test.cc.o"
  "CMakeFiles/test_fountain.dir/fountain/systematic_test.cc.o.d"
  "test_fountain"
  "test_fountain.pdb"
  "test_fountain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fountain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
