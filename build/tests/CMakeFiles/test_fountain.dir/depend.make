# Empty dependencies file for test_fountain.
# This may be replaced when dependencies are built.
