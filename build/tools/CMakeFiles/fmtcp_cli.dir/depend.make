# Empty dependencies file for fmtcp_cli.
# This may be replaced when dependencies are built.
