file(REMOVE_RECURSE
  "CMakeFiles/fmtcp_cli.dir/fmtcp_sim.cc.o"
  "CMakeFiles/fmtcp_cli.dir/fmtcp_sim.cc.o.d"
  "fmtcp_sim"
  "fmtcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtcp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
