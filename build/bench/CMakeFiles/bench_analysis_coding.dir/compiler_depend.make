# Empty compiler generated dependencies file for bench_analysis_coding.
# This may be replaced when dependencies are built.
