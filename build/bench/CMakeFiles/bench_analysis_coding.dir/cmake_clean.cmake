file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_coding.dir/bench_analysis_coding.cc.o"
  "CMakeFiles/bench_analysis_coding.dir/bench_analysis_coding.cc.o.d"
  "bench_analysis_coding"
  "bench_analysis_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
