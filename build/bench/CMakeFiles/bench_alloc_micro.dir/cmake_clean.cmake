file(REMOVE_RECURSE
  "CMakeFiles/bench_alloc_micro.dir/bench_alloc_micro.cc.o"
  "CMakeFiles/bench_alloc_micro.dir/bench_alloc_micro.cc.o.d"
  "bench_alloc_micro"
  "bench_alloc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alloc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
