file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_allocation.dir/bench_analysis_allocation.cc.o"
  "CMakeFiles/bench_analysis_allocation.dir/bench_analysis_allocation.cc.o.d"
  "bench_analysis_allocation"
  "bench_analysis_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
