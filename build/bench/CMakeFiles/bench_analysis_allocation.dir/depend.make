# Empty dependencies file for bench_analysis_allocation.
# This may be replaced when dependencies are built.
