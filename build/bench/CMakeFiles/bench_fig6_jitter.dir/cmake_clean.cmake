file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_jitter.dir/bench_fig6_jitter.cc.o"
  "CMakeFiles/bench_fig6_jitter.dir/bench_fig6_jitter.cc.o.d"
  "bench_fig6_jitter"
  "bench_fig6_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
