# Empty dependencies file for bench_fig5_delivery_delay.
# This may be replaced when dependencies are built.
