file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_delivery_delay.dir/bench_fig5_delivery_delay.cc.o"
  "CMakeFiles/bench_fig5_delivery_delay.dir/bench_fig5_delivery_delay.cc.o.d"
  "bench_fig5_delivery_delay"
  "bench_fig5_delivery_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_delivery_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
