
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_delivery_delay.cc" "bench/CMakeFiles/bench_fig5_delivery_delay.dir/bench_fig5_delivery_delay.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_delivery_delay.dir/bench_fig5_delivery_delay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fmtcp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_fountain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fmtcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
