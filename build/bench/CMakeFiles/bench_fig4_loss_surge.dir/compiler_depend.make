# Empty compiler generated dependencies file for bench_fig4_loss_surge.
# This may be replaced when dependencies are built.
