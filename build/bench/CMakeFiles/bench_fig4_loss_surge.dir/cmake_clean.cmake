file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_loss_surge.dir/bench_fig4_loss_surge.cc.o"
  "CMakeFiles/bench_fig4_loss_surge.dir/bench_fig4_loss_surge.cc.o.d"
  "bench_fig4_loss_surge"
  "bench_fig4_loss_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_loss_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
