file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bursty.dir/bench_ablation_bursty.cc.o"
  "CMakeFiles/bench_ablation_bursty.dir/bench_ablation_bursty.cc.o.d"
  "bench_ablation_bursty"
  "bench_ablation_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
