# Empty dependencies file for bench_ablation_bursty.
# This may be replaced when dependencies are built.
